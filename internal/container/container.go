// Package container defines the on-disk format for 9C-compressed test
// data: a small self-describing header followed by the packed T_E
// payload. Because T_E is ternary — leftover don't-cares survive
// compression — the payload stores two planes, the value bits and the
// X mask, so a stored stream can still be filled at load time.
//
// Layout (all integers little-endian uint32 unless noted):
//
//	offset  field
//	0       magic "N9C3" ("N9C2" containers, which lack the CRCs, and
//	        "N9C1" containers, which also lack the set-name field, are
//	        still read)
//	4       block size K
//	8       pattern count (0 when a bare cube was encoded)
//	12      scan width    (0 when a bare cube was encoded)
//	16      original bit count |T_D|
//	20      block count
//	24      stream bit count |T_E|
//	28      codeword table: 9 × (uint8 length + 8-byte zero-padded
//	        codeword ASCII)
//	...     set name (v2+): uint16 length + UTF-8 bytes, so a
//	        decompressed set keeps its original label instead of the
//	        container path
//	...     header CRC32C (v3 only): over every byte above, magic
//	        included
//	...     value plane, ceil(|T_E|/8) bytes, bit i at byte i/8 bit i%8
//	...     X-mask plane, same size (bit set = position is X)
//	...     payload CRC32C (v3 only): over both planes
//
// Reading is hostile-input hardened: header fields are cross-checked
// against each other and against robust.DecodeLimits before a single
// payload byte is allocated, the v3 CRCs detect any bit flip, and
// every failure wraps one of the robust taxonomy sentinels
// (ErrTruncated / ErrCorrupt / ErrLimitExceeded / ErrChecksum).
package container

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/robust"
)

// Magic identifies the default whole-payload format (CRC-protected).
const Magic = "N9C3"

// Magic4 identifies the chunked streaming format: the same CRC-checked
// header, but the payload split into CRC32C-framed chunks (see chunk.go)
// so a decoder can verify-and-emit incrementally and salvage up to the
// first bad chunk.
const Magic4 = "N9C4"

// MagicV2 is the CRC-less named format, accepted on read.
const MagicV2 = "N9C2"

// MagicV1 is the legacy nameless format, accepted on read.
const MagicV1 = "N9C1"

// maxNameLen bounds the stored set name; longer names are truncated on
// write and rejected on read.
const maxNameLen = 4096

// castagnoli is the CRC32C polynomial table used for both checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Write serializes an encoding result in the current (v3) format,
// including the source set name so decompression can restore the
// original label, and CRC32C checksums over header and payload.
func Write(w io.Writer, r *core.Result) error {
	return WriteVersion(w, r, Magic)
}

// WriteVersion serializes r in the format selected by magic ("N9C1",
// "N9C2", "N9C3" or "N9C4") — legacy versions exist for fixtures and
// compatibility tooling; new containers should use Write, or the
// streaming ChunkWriter when the payload should not be materialized.
// The v4 path requires a pattern-set result (Width ≥ 1): the chunked
// format is set-oriented so a streaming decoder can frame patterns.
func WriteVersion(w io.Writer, r *core.Result, magic string) (err error) {
	if magic == Magic4 {
		return writeV4(w, r)
	}
	if magic != Magic && magic != MagicV2 && magic != MagicV1 {
		return fmt.Errorf("container: unknown version %q", magic)
	}
	sp := obs.Active().Span("container.write")
	cw := &countingWriter{w: w}
	defer func() { observeIO(sp, "container.writes", "container.bytes_written", cw.n, err) }()

	hdr := buildHeader(magic, r.K, r.Patterns, r.Width, r.OrigBits, r.Blocks, r.Stream.Len(), r.Assign, r.Name)
	if _, err := cw.Write(hdr); err != nil {
		return err
	}

	val, mask := planes(r.Stream)
	if _, err := cw.Write(val); err != nil {
		return err
	}
	if _, err := cw.Write(mask); err != nil {
		return err
	}
	if magic == Magic {
		h := crc32.New(castagnoli)
		h.Write(val)
		h.Write(mask)
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], h.Sum32())
		if _, err := cw.Write(crc[:]); err != nil {
			return err
		}
	}
	return nil
}

// writeV4 serializes an in-memory result through the chunked writer.
func writeV4(w io.Writer, r *core.Result) error {
	cw, err := NewChunkWriter(w, StreamHeader{K: r.K, Width: r.Width, Assign: r.Assign, Name: r.Name})
	if err != nil {
		return err
	}
	if err := cw.WriteStream(r.Stream); err != nil {
		return err
	}
	return cw.Close(core.StreamSummary{
		Patterns: r.Patterns, Width: r.Width, OrigBits: r.OrigBits,
		Blocks: r.Blocks, StreamBits: r.Stream.Len(), Counts: r.Counts,
	})
}

// buildHeader assembles the header bytes (magic through set name, plus
// the CRC32C for the checksummed versions). The same layout serves v3
// and v4; a v4 header stores zero for the four stream totals, which
// live in the trailer instead because a streaming writer does not know
// them up front.
func buildHeader(magic string, k, patterns, width, origBits, blocks, streamBits int, assign core.Assignment, name string) []byte {
	var hdr bytes.Buffer
	hdr.WriteString(magic)
	var fields [24]byte
	binary.LittleEndian.PutUint32(fields[0:], uint32(k))
	binary.LittleEndian.PutUint32(fields[4:], uint32(patterns))
	binary.LittleEndian.PutUint32(fields[8:], uint32(width))
	binary.LittleEndian.PutUint32(fields[12:], uint32(origBits))
	binary.LittleEndian.PutUint32(fields[16:], uint32(blocks))
	binary.LittleEndian.PutUint32(fields[20:], uint32(streamBits))
	hdr.Write(fields[:])
	for cs := core.CaseAll0; cs <= core.CaseMisMis; cs++ {
		code := assign.Code(cs)
		var entry [9]byte
		entry[0] = byte(len(code))
		copy(entry[1:], code)
		hdr.Write(entry[:])
	}
	if magic != MagicV1 {
		if len(name) > maxNameLen {
			name = name[:maxNameLen]
		}
		var nlen [2]byte
		binary.LittleEndian.PutUint16(nlen[:], uint16(len(name)))
		hdr.Write(nlen[:])
		hdr.WriteString(name)
	}
	if magic == Magic || magic == Magic4 {
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(hdr.Bytes(), castagnoli))
		hdr.Write(crc[:])
	}
	return hdr.Bytes()
}

// Options selects how strictly ReadWithOptions treats the input.
type Options struct {
	// Limits bounds header-driven allocations; zero fields take the
	// robust defaults.
	Limits robust.DecodeLimits
	// Lenient makes the reader salvage what it can from a corrupt
	// payload instead of rejecting the container: CRC mismatches,
	// value/mask plane conflicts, nonzero padding and an undecodable
	// stream are recorded in Diag rather than returned as errors, and
	// Counts are left zero. Header faults and limit violations are
	// still fatal — without a trustworthy geometry there is nothing to
	// salvage. The caller is expected to follow up with
	// core.DecodeSetPartial / DecodeCubePartial.
	Lenient bool
}

// Diag reports what the reader observed, mostly for lenient mode.
type Diag struct {
	// Version is the magic of the container that was read.
	Version string
	// HasCRC is true for v3 containers, which carry checksums.
	HasCRC bool
	// HeaderCRCOK / PayloadCRCOK report the v3 checksum outcomes
	// (vacuously true when HasCRC is false).
	HeaderCRCOK, PayloadCRCOK bool
	// PlaneConflicts counts payload bits that were both X and 1; in
	// lenient mode they demote to X instead of failing the read.
	PlaneConflicts int
	// StreamErr is the lenient-mode record of why the stored stream
	// failed validation (nil when it decoded cleanly).
	StreamErr error
}

// Read parses a container back into a Result under the default decode
// limits (Counts are recomputed by re-classifying on decode when
// needed; the stored stream is authoritative). All format versions
// ("N9C3", "N9C2", "N9C1") are accepted.
func Read(rd io.Reader) (*core.Result, error) {
	return ReadWithLimits(rd, robust.DecodeLimits{})
}

// ReadWithLimits is Read with caller-supplied decode limits, enforced
// against the untrusted header before any payload allocation.
func ReadWithLimits(rd io.Reader, lim robust.DecodeLimits) (*core.Result, error) {
	res, _, err := ReadWithOptions(rd, Options{Limits: lim})
	return res, err
}

// ReadWithOptions parses a container under the given options and
// reports diagnostics alongside the result.
func ReadWithOptions(rd io.Reader, opt Options) (res *core.Result, diag *Diag, err error) {
	sp := obs.Active().Span("container.read")
	cr := &countingReader{r: rd}
	defer func() { observeIO(sp, "container.reads", "container.bytes_read", cr.n, err) }()
	lim := opt.Limits.WithDefaults()
	diag = &Diag{HeaderCRCOK: true, PayloadCRCOK: true}

	h, err := readHeader(cr, diag)
	if err != nil {
		return nil, diag, err
	}
	if h.version == Magic4 {
		return readV4(cr, h, opt, diag)
	}
	// Geometry validation runs after the v3 header CRC so field
	// corruption reports as a checksum fault, but strictly before the
	// payload planes are sized from the untrusted stream bit count.
	if err := validateGeometry(h.k, h.patterns, h.width, h.origBits, h.blocks, h.streamBits, lim); err != nil {
		return nil, diag, err
	}

	readFull := func(buf []byte, what string) error {
		if _, err := io.ReadFull(cr, buf); err != nil {
			return fmt.Errorf("container: %s: %w: %v", what, robust.ErrTruncated, err)
		}
		return nil
	}
	nbytes := (h.streamBits + 7) / 8
	val := make([]byte, nbytes)
	mask := make([]byte, nbytes)
	if err := readFull(val, "value plane"); err != nil {
		return nil, diag, err
	}
	if err := readFull(mask, "mask plane"); err != nil {
		return nil, diag, err
	}
	if diag.HasCRC {
		var crc [4]byte
		if err := readFull(crc[:], "payload checksum"); err != nil {
			return nil, diag, err
		}
		pcrc := crc32.New(castagnoli)
		pcrc.Write(val)
		pcrc.Write(mask)
		if got, want := pcrc.Sum32(), binary.LittleEndian.Uint32(crc[:]); got != want {
			diag.PayloadCRCOK = false
			if !opt.Lenient {
				return nil, diag, fmt.Errorf("container: payload CRC32C %08x, stored %08x: %w", got, want, robust.ErrChecksum)
			}
		}
	}
	if n, _ := cr.Read(make([]byte, 1)); n != 0 {
		return nil, diag, fmt.Errorf("container: trailing bytes: %w", robust.ErrCorrupt)
	}
	stream, conflicts, err := unplanes(val, mask, h.streamBits, opt.Lenient)
	diag.PlaneConflicts = conflicts
	if err != nil {
		return nil, diag, err
	}
	return finishResult(h, stream, opt.Lenient, diag)
}

// headerInfo is the parsed header of any container version: geometry
// fields, codeword assignment and set name. For v4 the four stream
// totals are zero placeholders; the real values live in the trailer.
type headerInfo struct {
	version                                          string
	k, patterns, width, origBits, blocks, streamBits int
	assign                                           core.Assignment
	name                                             string
}

// readHeader parses magic through the header checksum (where the
// version has one), updating diag as it goes. Shared by the whole-
// payload read path and the chunked v4 reader.
func readHeader(cr io.Reader, diag *Diag) (*headerInfo, error) {
	hcrc := crc32.New(castagnoli)
	readFull := func(buf []byte, what string) error {
		if _, err := io.ReadFull(cr, buf); err != nil {
			return fmt.Errorf("container: %s: %w: %v", what, robust.ErrTruncated, err)
		}
		return nil
	}

	h := &headerInfo{}
	var magic [4]byte
	if err := readFull(magic[:], "magic"); err != nil {
		return nil, err
	}
	hcrc.Write(magic[:])
	h.version = string(magic[:])
	diag.Version = h.version
	switch h.version {
	case Magic, Magic4:
		diag.HasCRC = true
	case MagicV2, MagicV1:
	default:
		return nil, fmt.Errorf("container: bad magic %q: %w", magic[:], robust.ErrCorrupt)
	}
	hasName := h.version != MagicV1

	var hdr [24]byte
	if err := readFull(hdr[:], "header"); err != nil {
		return nil, err
	}
	hcrc.Write(hdr[:])
	h.k = int(binary.LittleEndian.Uint32(hdr[0:]))
	h.patterns = int(binary.LittleEndian.Uint32(hdr[4:]))
	h.width = int(binary.LittleEndian.Uint32(hdr[8:]))
	h.origBits = int(binary.LittleEndian.Uint32(hdr[12:]))
	h.blocks = int(binary.LittleEndian.Uint32(hdr[16:]))
	h.streamBits = int(binary.LittleEndian.Uint32(hdr[20:]))

	codes := make([]string, core.NumCases)
	for i := range codes {
		var entry [9]byte
		if err := readFull(entry[:], "codeword table"); err != nil {
			return nil, err
		}
		hcrc.Write(entry[:])
		n := int(entry[0])
		if n < 1 || n > 8 {
			return nil, fmt.Errorf("container: codeword %d has length %d: %w", i+1, n, robust.ErrCorrupt)
		}
		code := string(entry[1 : 1+n])
		if strings.Trim(code, "01") != "" {
			return nil, fmt.Errorf("container: codeword %d is not binary: %q: %w", i+1, code, robust.ErrCorrupt)
		}
		codes[i] = code
	}
	assign, err := core.AssignmentFromCodes(codes)
	if err != nil {
		return nil, fmt.Errorf("container: %w: %w", robust.ErrCorrupt, err)
	}
	h.assign = assign

	if hasName {
		var nlen [2]byte
		if err := readFull(nlen[:], "set name length"); err != nil {
			return nil, err
		}
		hcrc.Write(nlen[:])
		n := int(binary.LittleEndian.Uint16(nlen[:]))
		if n > maxNameLen {
			return nil, fmt.Errorf("container: set name length %d exceeds %d: %w", n, maxNameLen, robust.ErrLimitExceeded)
		}
		buf := make([]byte, n)
		if err := readFull(buf, "set name"); err != nil {
			return nil, err
		}
		hcrc.Write(buf)
		h.name = string(buf)
	}
	if diag.HasCRC {
		var crc [4]byte
		if err := readFull(crc[:], "header checksum"); err != nil {
			return nil, err
		}
		if got, want := hcrc.Sum32(), binary.LittleEndian.Uint32(crc[:]); got != want {
			// A bad header CRC is fatal even in lenient mode: the
			// geometry that partial decode depends on is untrustworthy.
			diag.HeaderCRCOK = false
			return nil, fmt.Errorf("container: header CRC32C %08x, stored %08x: %w", got, want, robust.ErrChecksum)
		}
	}
	return h, nil
}

// finishResult builds the Result from a verified stream and geometry,
// recovering the codeword statistics (and validating the stream) by
// decoding once. Lenient mode records the failure instead and leaves
// Counts zero: the caller salvages via partial decode.
func finishResult(h *headerInfo, stream *bitvec.Cube, lenient bool, diag *Diag) (*core.Result, *Diag, error) {
	r := &core.Result{
		K: h.k, Name: h.name, Assign: h.assign, Stream: stream,
		OrigBits: h.origBits, Blocks: h.blocks, LeftoverX: stream.XCount(),
		Patterns: h.patterns, Width: h.width,
	}
	cdc, err := core.NewWithAssignment(h.k, h.assign)
	if err != nil {
		return nil, diag, fmt.Errorf("container: %w: %w", robust.ErrCorrupt, err)
	}
	if diag.StreamErr != nil {
		// The chunked reader already hit a payload fault; the stream is
		// a salvaged prefix and re-validating it would be misleading.
		return r, diag, nil
	}
	if _, _, err := cdc.Decode(r); err != nil {
		if !lenient {
			return nil, diag, fmt.Errorf("container: stored stream does not decode: %w", err)
		}
		diag.StreamErr = err
		return r, diag, nil
	}
	counts, err := core.CountsOfStream(cdc, stream, h.blocks)
	if err != nil {
		if !lenient {
			return nil, diag, fmt.Errorf("container: %w: %w", robust.ErrCorrupt, err)
		}
		diag.StreamErr = err
		return r, diag, nil
	}
	r.Counts = counts
	return r, diag, nil
}

// validateGeometry cross-checks the untrusted header fields against
// each other and against the decode limits. It runs before any
// header-sized allocation, so a forged header can never oversize a
// buffer: the fields must be exactly the ones the encoder would have
// produced for some input, and inside the caller's budget. All
// arithmetic is in int64 so forged 32-bit extremes cannot overflow.
func validateGeometry(k, patterns, width, origBits, blocks, streamBits int, lim robust.DecodeLimits) error {
	if k > 1<<20 {
		return fmt.Errorf("container: implausible block size K=%d: %w", k, robust.ErrCorrupt)
	}
	if k < 2 || k%2 != 0 || origBits < 0 || blocks < 0 || streamBits < 0 {
		return fmt.Errorf("container: implausible header (K=%d orig=%d blocks=%d stream=%d): %w",
			k, origBits, blocks, streamBits, robust.ErrCorrupt)
	}
	if patterns > 0 && width == 0 {
		return fmt.Errorf("container: %d patterns of width 0: %w", patterns, robust.ErrCorrupt)
	}
	// The block count and |T_D| are fully determined by the geometry:
	// per-pattern padding for sets (width > 0, possibly zero patterns),
	// one padded run for bare cubes.
	var wantBlocks, wantOrig int64
	if width > 0 {
		blocksPer := (int64(width) + int64(k) - 1) / int64(k)
		wantBlocks = blocksPer * int64(patterns)
		wantOrig = int64(patterns) * int64(width)
	} else {
		wantBlocks = (int64(origBits) + int64(k) - 1) / int64(k)
		wantOrig = int64(origBits)
	}
	if int64(blocks) != wantBlocks || int64(origBits) != wantOrig {
		return fmt.Errorf("container: %d blocks / %d bits disagree with geometry %dx%d at K=%d: %w",
			blocks, origBits, patterns, width, k, robust.ErrCorrupt)
	}
	// 9C never expands a block beyond its longest codeword plus K data
	// bits, and every block ships at least a one-bit codeword.
	if int64(streamBits) > int64(blocks)*int64(8+k) || streamBits < blocks {
		return fmt.Errorf("container: stream size %d inconsistent with %d blocks of K=%d: %w",
			streamBits, blocks, k, robust.ErrCorrupt)
	}
	if patterns > lim.MaxPatterns {
		return fmt.Errorf("container: %d patterns exceed limit %d: %w", patterns, lim.MaxPatterns, robust.ErrLimitExceeded)
	}
	if width > lim.MaxWidth {
		return fmt.Errorf("container: width %d exceeds limit %d: %w", width, lim.MaxWidth, robust.ErrLimitExceeded)
	}
	if payload := 2 * ((int64(streamBits) + 7) / 8); payload > int64(lim.MaxPayloadBytes) {
		return fmt.Errorf("container: payload %d bytes exceeds limit %d: %w", payload, lim.MaxPayloadBytes, robust.ErrLimitExceeded)
	}
	return nil
}

// planes splits a ternary stream into (value bits, X mask) byte planes.
func planes(c *bitvec.Cube) (val, mask []byte) {
	n := (c.Len() + 7) / 8
	val = make([]byte, n)
	mask = make([]byte, n)
	for i := 0; i < c.Len(); i++ {
		switch c.Get(i) {
		case bitvec.One:
			val[i/8] |= 1 << uint(i%8)
		case bitvec.X:
			mask[i/8] |= 1 << uint(i%8)
		}
	}
	return val, mask
}

// unplanes rebuilds the ternary stream. A set mask bit with a set
// value bit is rejected as corruption — or, leniently, demoted to X
// and counted. Nonzero pad bits in the final byte are rejected the
// same way (counted but ignored when lenient).
func unplanes(val, mask []byte, bits int, lenient bool) (*bitvec.Cube, int, error) {
	conflicts := 0
	c := bitvec.NewCube(bits)
	for i := 0; i < bits; i++ {
		v := val[i/8]>>uint(i%8)&1 == 1
		x := mask[i/8]>>uint(i%8)&1 == 1
		switch {
		case x && v:
			if !lenient {
				return nil, conflicts, fmt.Errorf("container: bit %d is both X and 1: %w", i, robust.ErrCorrupt)
			}
			conflicts++ // stays X
		case x:
			// stays X
		case v:
			c.Set(i, bitvec.One)
		default:
			c.Set(i, bitvec.Zero)
		}
	}
	// Unused pad bits in the final byte must be zero.
	for i := bits; i < len(val)*8; i++ {
		if val[i/8]>>uint(i%8)&1 == 1 || mask[i/8]>>uint(i%8)&1 == 1 {
			if !lenient {
				return nil, conflicts, fmt.Errorf("container: nonzero padding bit %d: %w", i, robust.ErrCorrupt)
			}
			conflicts++
		}
	}
	return c, conflicts, nil
}

// countingWriter tracks bytes written for the telemetry counters.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader tracks bytes read for the telemetry counters.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// observeIO publishes one container I/O operation and ends its span.
func observeIO(sp *obs.Span, opCounter, byteCounter string, bytes int64, err error) {
	reg := obs.Active()
	if reg == nil {
		sp.End()
		return
	}
	reg.Counter(opCounter).Inc()
	reg.Counter(byteCounter).Add(bytes)
	sp.Set("bytes", bytes)
	if err != nil {
		reg.Counter("container.errors").Inc()
		sp.Set("error", err.Error())
	}
	sp.End()
}
