// Package container defines the on-disk format for 9C-compressed test
// data: a small self-describing header followed by the packed T_E
// payload. Because T_E is ternary — leftover don't-cares survive
// compression — the payload stores two planes, the value bits and the
// X mask, so a stored stream can still be filled at load time.
//
// Layout (all integers little-endian uint32 unless noted):
//
//	offset  field
//	0       magic "N9C2" ("N9C1" containers, which lack the set-name
//	        field, are still read)
//	4       block size K
//	8       pattern count (0 when a bare cube was encoded)
//	12      scan width    (0 when a bare cube was encoded)
//	16      original bit count |T_D|
//	20      block count
//	24      stream bit count |T_E|
//	28      codeword table: 9 × (uint8 length + 8-byte zero-padded
//	        codeword ASCII)
//	...     set name (v2 only): uint16 length + UTF-8 bytes, so a
//	        decompressed set keeps its original label instead of the
//	        container path
//	...     value plane, ceil(|T_E|/8) bytes, bit i at byte i/8 bit i%8
//	...     X-mask plane, same size (bit set = position is X)
package container

import (
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/obs"
)

// Magic identifies the current format version.
const Magic = "N9C2"

// MagicV1 is the legacy nameless format, accepted on read.
const MagicV1 = "N9C1"

// maxNameLen bounds the stored set name; longer names are truncated on
// write and rejected on read.
const maxNameLen = 4096

// Write serializes an encoding result, including the source set name
// so decompression can restore the original label.
func Write(w io.Writer, r *core.Result) (err error) {
	sp := obs.Active().Span("container.write")
	cw := &countingWriter{w: w}
	defer func() { observeIO(sp, "container.writes", "container.bytes_written", cw.n, err) }()
	w = cw

	var hdr [28]byte
	copy(hdr[0:4], Magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(r.K))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(r.Patterns))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(r.Width))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(r.OrigBits))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(r.Blocks))
	binary.LittleEndian.PutUint32(hdr[24:], uint32(r.Stream.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for cs := core.CaseAll0; cs <= core.CaseMisMis; cs++ {
		code := r.Assign.Code(cs)
		var entry [9]byte
		entry[0] = byte(len(code))
		copy(entry[1:], code)
		if _, err := w.Write(entry[:]); err != nil {
			return err
		}
	}
	name := r.Name
	if len(name) > maxNameLen {
		name = name[:maxNameLen]
	}
	var nlen [2]byte
	binary.LittleEndian.PutUint16(nlen[:], uint16(len(name)))
	if _, err := w.Write(nlen[:]); err != nil {
		return err
	}
	if _, err := io.WriteString(w, name); err != nil {
		return err
	}
	val, mask := planes(r.Stream)
	if _, err := w.Write(val); err != nil {
		return err
	}
	_, err = w.Write(mask)
	return err
}

// Read parses a container back into a Result (Counts are recomputed by
// re-classifying on decode when needed; the stored stream is
// authoritative). Both the current "N9C2" format and the legacy
// nameless "N9C1" format are accepted.
func Read(rd io.Reader) (res *core.Result, err error) {
	sp := obs.Active().Span("container.read")
	cr := &countingReader{r: rd}
	defer func() { observeIO(sp, "container.reads", "container.bytes_read", cr.n, err) }()
	rd = cr

	var hdr [28]byte
	if _, err := io.ReadFull(rd, hdr[:]); err != nil {
		return nil, fmt.Errorf("container: header: %w", err)
	}
	hasName := string(hdr[0:4]) == Magic
	if !hasName && string(hdr[0:4]) != MagicV1 {
		return nil, fmt.Errorf("container: bad magic %q", hdr[0:4])
	}
	k := int(binary.LittleEndian.Uint32(hdr[4:]))
	patterns := int(binary.LittleEndian.Uint32(hdr[8:]))
	width := int(binary.LittleEndian.Uint32(hdr[12:]))
	origBits := int(binary.LittleEndian.Uint32(hdr[16:]))
	blocks := int(binary.LittleEndian.Uint32(hdr[20:]))
	streamBits := int(binary.LittleEndian.Uint32(hdr[24:]))
	if k > 1<<20 {
		return nil, fmt.Errorf("container: implausible block size K=%d", k)
	}
	if k < 2 || k%2 != 0 || origBits < 0 || blocks < 0 || streamBits < 0 {
		return nil, fmt.Errorf("container: implausible header (K=%d orig=%d blocks=%d stream=%d)",
			k, origBits, blocks, streamBits)
	}
	// Format limits: 9C never expands a block beyond its longest
	// codeword plus K data bits, and the stream cannot outgrow what the
	// blocks can carry — reject forged headers before allocating.
	const maxStreamBits = 1 << 30
	if streamBits > maxStreamBits || streamBits > blocks*(8+k) {
		return nil, fmt.Errorf("container: stream size %d inconsistent with %d blocks of K=%d", streamBits, blocks, k)
	}
	if blocks > origBits+k {
		return nil, fmt.Errorf("container: %d blocks for %d original bits", blocks, origBits)
	}

	codes := make([]string, core.NumCases)
	for i := range codes {
		var entry [9]byte
		if _, err := io.ReadFull(rd, entry[:]); err != nil {
			return nil, fmt.Errorf("container: codeword table: %w", err)
		}
		n := int(entry[0])
		if n < 1 || n > 8 {
			return nil, fmt.Errorf("container: codeword %d has length %d", i+1, n)
		}
		code := string(entry[1 : 1+n])
		if strings.Trim(code, "01") != "" {
			return nil, fmt.Errorf("container: codeword %d is not binary: %q", i+1, code)
		}
		codes[i] = code
	}
	assign, err := core.AssignmentFromCodes(codes)
	if err != nil {
		return nil, fmt.Errorf("container: %w", err)
	}

	var name string
	if hasName {
		var nlen [2]byte
		if _, err := io.ReadFull(rd, nlen[:]); err != nil {
			return nil, fmt.Errorf("container: set name length: %w", err)
		}
		n := int(binary.LittleEndian.Uint16(nlen[:]))
		if n > maxNameLen {
			return nil, fmt.Errorf("container: set name length %d exceeds %d", n, maxNameLen)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(rd, buf); err != nil {
			return nil, fmt.Errorf("container: set name: %w", err)
		}
		name = string(buf)
	}

	nbytes := (streamBits + 7) / 8
	val := make([]byte, nbytes)
	mask := make([]byte, nbytes)
	if _, err := io.ReadFull(rd, val); err != nil {
		return nil, fmt.Errorf("container: value plane: %w", err)
	}
	if _, err := io.ReadFull(rd, mask); err != nil {
		return nil, fmt.Errorf("container: mask plane: %w", err)
	}
	if n, _ := rd.Read(make([]byte, 1)); n != 0 {
		return nil, fmt.Errorf("container: trailing bytes")
	}
	stream, err := unplanes(val, mask, streamBits)
	if err != nil {
		return nil, err
	}

	r := &core.Result{
		K: k, Name: name, Assign: assign, Stream: stream,
		OrigBits: origBits, Blocks: blocks, LeftoverX: stream.XCount(),
		Patterns: patterns, Width: width,
	}
	// Recover the codeword statistics (and validate the stream) by
	// decoding once.
	cdc, err := core.NewWithAssignment(k, assign)
	if err != nil {
		return nil, err
	}
	if _, _, err := cdc.Decode(r); err != nil {
		return nil, fmt.Errorf("container: stored stream does not decode: %w", err)
	}
	counts, err := core.CountsOfStream(cdc, stream, blocks)
	if err != nil {
		return nil, err
	}
	r.Counts = counts
	return r, nil
}

// planes splits a ternary stream into (value bits, X mask) byte planes.
func planes(c *bitvec.Cube) (val, mask []byte) {
	n := (c.Len() + 7) / 8
	val = make([]byte, n)
	mask = make([]byte, n)
	for i := 0; i < c.Len(); i++ {
		switch c.Get(i) {
		case bitvec.One:
			val[i/8] |= 1 << uint(i%8)
		case bitvec.X:
			mask[i/8] |= 1 << uint(i%8)
		}
	}
	return val, mask
}

// unplanes rebuilds the ternary stream; a set mask bit with a set value
// bit is rejected as corruption.
func unplanes(val, mask []byte, bits int) (*bitvec.Cube, error) {
	c := bitvec.NewCube(bits)
	for i := 0; i < bits; i++ {
		v := val[i/8]>>uint(i%8)&1 == 1
		x := mask[i/8]>>uint(i%8)&1 == 1
		switch {
		case x && v:
			return nil, fmt.Errorf("container: bit %d is both X and 1", i)
		case x:
			// stays X
		case v:
			c.Set(i, bitvec.One)
		default:
			c.Set(i, bitvec.Zero)
		}
	}
	// Unused pad bits in the final byte must be zero.
	for i := bits; i < len(val)*8; i++ {
		if val[i/8]>>uint(i%8)&1 == 1 || mask[i/8]>>uint(i%8)&1 == 1 {
			return nil, fmt.Errorf("container: nonzero padding bit %d", i)
		}
	}
	return c, nil
}

// countingWriter tracks bytes written for the telemetry counters.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// countingReader tracks bytes read for the telemetry counters.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// observeIO publishes one container I/O operation and ends its span.
func observeIO(sp *obs.Span, opCounter, byteCounter string, bytes int64, err error) {
	reg := obs.Active()
	if reg == nil {
		sp.End()
		return
	}
	reg.Counter(opCounter).Inc()
	reg.Counter(byteCounter).Add(bytes)
	sp.Set("bytes", bytes)
	if err != nil {
		reg.Counter("container.errors").Inc()
		sp.Set("error", err.Error())
	}
	sp.End()
}
