package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/robust"
	"repro/internal/tcube"
)

func encodeSet(t *testing.T, k int, rows ...string) (*core.Codec, *core.Result, *tcube.Set) {
	t.Helper()
	set, err := tcube.Read("c", strings.NewReader(strings.Join(rows, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	cdc, err := core.New(k)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cdc.EncodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	return cdc, r, set
}

func TestWriteReadRoundTrip(t *testing.T) {
	cdc, r, set := encodeSet(t, 8,
		"0000000011111111",
		"01X011011XXXXX10",
		"XXXXXXXXXXXXXXXX",
	)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != r.K || back.OrigBits != r.OrigBits || back.Blocks != r.Blocks ||
		back.Patterns != r.Patterns || back.Width != r.Width || back.LeftoverX != r.LeftoverX {
		t.Fatalf("header mismatch: %+v vs %+v", back, r)
	}
	if !back.Stream.Equal(r.Stream) {
		t.Fatal("stream mismatch")
	}
	if back.Counts != r.Counts {
		t.Fatalf("counts %v vs %v", back.Counts, r.Counts)
	}
	dec, err := cdc.DecodeSet(back.Stream, set.Width(), set.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !set.Covers(dec) {
		t.Fatal("decoded container contradicts source")
	}
}

// TestReadRejectsCorruption mutates a CRC-less v2 container so each
// mutation exercises its specific structural check (in v3 the CRC
// masks them all), asserting every rejection lands in the robust
// taxonomy.
func TestReadRejectsCorruption(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111", "01X011011XXXXX10")
	var buf bytes.Buffer
	if err := WriteVersion(&buf, r, MagicV2); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutate := func(name string, want error, f func(b []byte) []byte) {
		t.Helper()
		b := append([]byte(nil), good...)
		b = f(b)
		_, err := Read(bytes.NewReader(b))
		if err == nil {
			t.Errorf("%s accepted", name)
			return
		}
		if !robust.IsClassified(err) {
			t.Errorf("%s: error outside taxonomy: %v", name, err)
		}
		if want != nil && !errors.Is(err, want) {
			t.Errorf("%s: error %v, want %v", name, err, want)
		}
	}
	mutate("bad magic", robust.ErrCorrupt, func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("odd K", robust.ErrCorrupt, func(b []byte) []byte { b[4] = 7; return b })
	mutate("truncated header", robust.ErrTruncated, func(b []byte) []byte { return b[:20] })
	mutate("truncated payload", robust.ErrTruncated, func(b []byte) []byte { return b[:len(b)-2] })
	mutate("trailing bytes", robust.ErrCorrupt, func(b []byte) []byte { return append(b, 0) })
	mutate("codeword length 0", robust.ErrCorrupt, func(b []byte) []byte { b[28] = 0; return b })
	mutate("codeword non-binary", robust.ErrCorrupt, func(b []byte) []byte { b[29] = 'z'; return b })
	// Corrupting a codeword table entry so two codes collide.
	mutate("duplicate codewords", robust.ErrCorrupt, func(b []byte) []byte {
		copy(b[28:37], b[37:46])
		return b
	})
	// Value+mask both set on bit 0 of the payload, which starts after
	// the header, codeword table, and length-prefixed set name.
	mutate("X and 1 simultaneously", robust.ErrCorrupt, func(b []byte) []byte {
		nameOff := 28 + 9*9
		payload := nameOff + 2 + int(binary.LittleEndian.Uint16(b[nameOff:]))
		nbytes := (len(b) - payload) / 2
		b[payload] |= 1
		b[payload+nbytes] |= 1
		return b
	})
	mutate("oversized name length", robust.ErrLimitExceeded, func(b []byte) []byte {
		nameOff := 28 + 9*9
		binary.LittleEndian.PutUint16(b[nameOff:], 60000)
		return b
	})
	// Forged pattern count disagreeing with origBits/blocks: must be
	// rejected by cross-field validation before any allocation.
	mutate("forged pattern count", robust.ErrCorrupt, func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:], 1<<30)
		return b
	})
}

// TestSetNameRoundTrip asserts the v2 header preserves the source set
// name, so a decompressed set no longer inherits its container path.
func TestSetNameRoundTrip(t *testing.T) {
	_, r, set := encodeSet(t, 8, "0000000011111111")
	if r.Name != set.Name {
		t.Fatalf("encode result name %q, want %q", r.Name, set.Name)
	}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != set.Name {
		t.Fatalf("container round-trip name %q, want %q", back.Name, set.Name)
	}
}

// TestReadLegacyVersions asserts CRC-less N9C2 and nameless N9C1
// containers still load through the v3 reader.
func TestReadLegacyVersions(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111", "01X011011XXXXX10")
	for _, magic := range []string{MagicV1, MagicV2} {
		var buf bytes.Buffer
		if err := WriteVersion(&buf, r, magic); err != nil {
			t.Fatal(err)
		}
		back, diag, err := ReadWithOptions(bytes.NewReader(buf.Bytes()), Options{})
		if err != nil {
			t.Fatalf("%s: %v", magic, err)
		}
		if diag.Version != magic || diag.HasCRC {
			t.Fatalf("%s: diag %+v", magic, diag)
		}
		wantName := r.Name
		if magic == MagicV1 {
			wantName = ""
		}
		if back.Name != wantName {
			t.Fatalf("%s container produced name %q, want %q", magic, back.Name, wantName)
		}
		if !back.Stream.Equal(r.Stream) || back.Counts != r.Counts {
			t.Fatalf("%s payload misparsed", magic)
		}
	}
}

// TestHostileHeader16Bytes is the regression test for the header-trust
// bug: a 16-byte input that carries a valid magic and forged huge size
// fields used to reach make([]byte, n) before anything noticed the
// stream was 16 bytes long. All four magic variants must fail with
// ErrTruncated (the bytes run out before the header completes) and
// must never allocate payload-sized buffers.
func TestHostileHeader16Bytes(t *testing.T) {
	for _, magic := range []string{Magic, MagicV2, MagicV1, "XXXX"} {
		b := make([]byte, 16)
		copy(b, magic)
		b[4] = 8 // plausible K
		// Forge enormous patterns/width in the bytes that fit.
		binary.LittleEndian.PutUint32(b[8:], 0xFFFFFFFF)
		binary.LittleEndian.PutUint32(b[12:], 0xFFFFFFFF)
		_, err := Read(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("%q: 16-byte hostile header accepted", magic)
		}
		want := robust.ErrTruncated
		if magic == "XXXX" {
			want = robust.ErrCorrupt
		}
		if !errors.Is(err, want) {
			t.Errorf("%q: got %v, want %v", magic, err, want)
		}
	}
}

// TestV3DetectsEveryBitFlip flips every bit of a small v3 container and
// asserts each mutant is rejected with a classified error — the CRC32C
// pair guarantees any single-bit corruption is caught.
func TestV3DetectsEveryBitFlip(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111", "01X011011XXXXX10")
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for i := 0; i < len(good)*8; i++ {
		b := append([]byte(nil), good...)
		b[i/8] ^= 1 << (i % 8)
		_, err := Read(bytes.NewReader(b))
		if err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
		if !robust.IsClassified(err) {
			t.Fatalf("bit flip at %d: error outside taxonomy: %v", i, err)
		}
	}
}

// TestDecodeLimits asserts forged-but-consistent geometry that exceeds
// the caller's limits is rejected with ErrLimitExceeded before payload
// allocation (the container body is absent, so reaching the payload
// read would surface ErrTruncated instead).
func TestDecodeLimits(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111", "01X011011XXXXX10")
	var buf bytes.Buffer
	if err := WriteVersion(&buf, r, MagicV2); err != nil {
		t.Fatal(err)
	}
	nameOff := 28 + 9*9
	payloadOff := nameOff + 2 + int(binary.LittleEndian.Uint16(buf.Bytes()[nameOff:]))
	headerOnly := buf.Bytes()[:payloadOff]

	cases := []struct {
		name string
		lim  robust.DecodeLimits
	}{
		{"patterns", robust.DecodeLimits{MaxPatterns: 1}},
		{"width", robust.DecodeLimits{MaxWidth: 4}},
		{"payload", robust.DecodeLimits{MaxPayloadBytes: 1}},
	}
	for _, tc := range cases {
		_, err := ReadWithLimits(bytes.NewReader(headerOnly), tc.lim)
		if !errors.Is(err, robust.ErrLimitExceeded) {
			t.Errorf("%s: got %v, want ErrLimitExceeded", tc.name, err)
		}
	}
	// Within limits the same truncated input must fail as truncated,
	// proving the limit rejections above fired before the payload read.
	if _, err := ReadWithLimits(bytes.NewReader(headerOnly), robust.DecodeLimits{}); !errors.Is(err, robust.ErrTruncated) {
		t.Errorf("headerOnly under default limits: got %v, want ErrTruncated", err)
	}
	// A healthy container under generous limits still loads.
	if _, err := ReadWithLimits(bytes.NewReader(buf.Bytes()), robust.DecodeLimits{MaxPatterns: 100}); err != nil {
		t.Errorf("healthy container rejected: %v", err)
	}
}

// TestLenientRead corrupts the payload of a v3 container and asserts
// strict mode rejects it with ErrChecksum while lenient mode loads it,
// records the CRC failure in Diag, and leaves a salvageable stream.
func TestLenientRead(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111", "01X011011XXXXX10")
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Flip a val-plane bit whose mask-plane partner is clear (a care
	// bit), so the mutant stays a well-formed ternary stream and only
	// the payload CRC notices. Search from the payload start.
	nameOff := 28 + 9*9
	headerEnd := nameOff + 2 + int(binary.LittleEndian.Uint16(good[nameOff:])) + 4
	nbytes := (len(good) - headerEnd - 4) / 2
	flip := -1
	for i := 0; i < nbytes*8; i++ {
		if good[headerEnd+nbytes+i/8]&(1<<(i%8)) == 0 { // mask bit clear
			flip = i
			break
		}
	}
	if flip < 0 {
		t.Fatal("no care bit found in payload")
	}
	bad := append([]byte(nil), good...)
	bad[headerEnd+flip/8] ^= 1 << (flip % 8)

	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, robust.ErrChecksum) {
		t.Fatalf("strict read of corrupt payload: got %v, want ErrChecksum", err)
	}
	back, diag, err := ReadWithOptions(bytes.NewReader(bad), Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient read failed: %v", err)
	}
	if !diag.HasCRC || !diag.HeaderCRCOK || diag.PayloadCRCOK {
		t.Fatalf("diag %+v: want header CRC ok, payload CRC bad", diag)
	}
	if back.Stream.Len() != r.Stream.Len() {
		t.Fatalf("lenient stream length %d, want %d", back.Stream.Len(), r.Stream.Len())
	}
	// Header corruption stays fatal even in lenient mode.
	bad2 := append([]byte(nil), good...)
	bad2[6] ^= 1
	if _, _, err := ReadWithOptions(bytes.NewReader(bad2), Options{Lenient: true}); !errors.Is(err, robust.ErrChecksum) {
		t.Fatalf("lenient read of corrupt header: got %v, want ErrChecksum", err)
	}
}

func TestReadRejectsUndecodableStream(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111")
	// Claim one more block than the stream holds.
	r2 := *r
	r2.Blocks++
	r2.OrigBits += 8
	var buf bytes.Buffer
	if err := Write(&buf, &r2); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestPropertyContainerRoundTrip(t *testing.T) {
	f := func(seed int64, kRaw, nRaw, wRaw uint8) bool {
		k := (int(kRaw%8) + 1) * 2
		n := int(nRaw % 12)
		w := int(wRaw%24) + 1
		rng := rand.New(rand.NewSource(seed))
		set := tcube.NewSet("p", w)
		for i := 0; i < n; i++ {
			c := bitvec.NewCube(w)
			for j := 0; j < w; j++ {
				c.Set(j, bitvec.Trit(rng.Intn(3)))
			}
			set.MustAppend(c)
		}
		cdc, err := core.New(k)
		if err != nil {
			return false
		}
		r, err := cdc.EncodeSet(set)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, r); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return back.Stream.Equal(r.Stream) && back.Counts == r.Counts &&
			back.K == r.K && back.OrigBits == r.OrigBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
