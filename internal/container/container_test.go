package container

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/tcube"
)

func encodeSet(t *testing.T, k int, rows ...string) (*core.Codec, *core.Result, *tcube.Set) {
	t.Helper()
	set, err := tcube.Read("c", strings.NewReader(strings.Join(rows, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	cdc, err := core.New(k)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cdc.EncodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	return cdc, r, set
}

func TestWriteReadRoundTrip(t *testing.T) {
	cdc, r, set := encodeSet(t, 8,
		"0000000011111111",
		"01X011011XXXXX10",
		"XXXXXXXXXXXXXXXX",
	)
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != r.K || back.OrigBits != r.OrigBits || back.Blocks != r.Blocks ||
		back.Patterns != r.Patterns || back.Width != r.Width || back.LeftoverX != r.LeftoverX {
		t.Fatalf("header mismatch: %+v vs %+v", back, r)
	}
	if !back.Stream.Equal(r.Stream) {
		t.Fatal("stream mismatch")
	}
	if back.Counts != r.Counts {
		t.Fatalf("counts %v vs %v", back.Counts, r.Counts)
	}
	dec, err := cdc.DecodeSet(back.Stream, set.Width(), set.Len())
	if err != nil {
		t.Fatal(err)
	}
	if !set.Covers(dec) {
		t.Fatal("decoded container contradicts source")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111", "01X011011XXXXX10")
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutate := func(name string, f func(b []byte) []byte) {
		t.Helper()
		b := append([]byte(nil), good...)
		b = f(b)
		if _, err := Read(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	mutate("bad magic", func(b []byte) []byte { b[0] = 'X'; return b })
	mutate("odd K", func(b []byte) []byte { b[4] = 7; return b })
	mutate("truncated header", func(b []byte) []byte { return b[:20] })
	mutate("truncated payload", func(b []byte) []byte { return b[:len(b)-2] })
	mutate("trailing bytes", func(b []byte) []byte { return append(b, 0) })
	mutate("codeword length 0", func(b []byte) []byte { b[28] = 0; return b })
	mutate("codeword non-binary", func(b []byte) []byte { b[29] = 'z'; return b })
	// Corrupting a codeword table entry so two codes collide.
	mutate("duplicate codewords", func(b []byte) []byte {
		copy(b[28:37], b[37:46])
		return b
	})
	// Value+mask both set on bit 0 of the payload, which starts after
	// the header, codeword table, and length-prefixed set name.
	mutate("X and 1 simultaneously", func(b []byte) []byte {
		nameOff := 28 + 9*9
		payload := nameOff + 2 + int(binary.LittleEndian.Uint16(b[nameOff:]))
		nbytes := (len(b) - payload) / 2
		b[payload] |= 1
		b[payload+nbytes] |= 1
		return b
	})
	mutate("oversized name length", func(b []byte) []byte {
		nameOff := 28 + 9*9
		binary.LittleEndian.PutUint16(b[nameOff:], 60000)
		return b
	})
}

// TestSetNameRoundTrip asserts the v2 header preserves the source set
// name, so a decompressed set no longer inherits its container path.
func TestSetNameRoundTrip(t *testing.T) {
	_, r, set := encodeSet(t, 8, "0000000011111111")
	if r.Name != set.Name {
		t.Fatalf("encode result name %q, want %q", r.Name, set.Name)
	}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != set.Name {
		t.Fatalf("container round-trip name %q, want %q", back.Name, set.Name)
	}
}

// TestReadLegacyV1 asserts nameless N9C1 containers still load: the
// v2 reader must treat the name field as absent, not misparse the
// payload.
func TestReadLegacyV1(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111", "01X011011XXXXX10")
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		t.Fatal(err)
	}
	// Rewrite the v2 container as v1: legacy magic, name field spliced
	// out (it sits between the codeword table and the planes).
	b := append([]byte(nil), buf.Bytes()...)
	copy(b[0:4], MagicV1)
	nameOff := 28 + 9*9
	nameLen := int(binary.LittleEndian.Uint16(b[nameOff:]))
	v1 := append(b[:nameOff:nameOff], b[nameOff+2+nameLen:]...)

	back, err := Read(bytes.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "" {
		t.Fatalf("v1 container produced name %q, want empty", back.Name)
	}
	if !back.Stream.Equal(r.Stream) || back.Counts != r.Counts {
		t.Fatal("v1 payload misparsed")
	}
}

func TestReadRejectsUndecodableStream(t *testing.T) {
	_, r, _ := encodeSet(t, 8, "0000000011111111")
	// Claim one more block than the stream holds.
	r2 := *r
	r2.Blocks++
	r2.OrigBits += 8
	var buf bytes.Buffer
	if err := Write(&buf, &r2); err != nil {
		t.Fatal(err)
	}
	if _, err := Read(&buf); err == nil {
		t.Fatal("short stream accepted")
	}
}

func TestPropertyContainerRoundTrip(t *testing.T) {
	f := func(seed int64, kRaw, nRaw, wRaw uint8) bool {
		k := (int(kRaw%8) + 1) * 2
		n := int(nRaw % 12)
		w := int(wRaw%24) + 1
		rng := rand.New(rand.NewSource(seed))
		set := tcube.NewSet("p", w)
		for i := 0; i < n; i++ {
			c := bitvec.NewCube(w)
			for j := 0; j < w; j++ {
				c.Set(j, bitvec.Trit(rng.Intn(3)))
			}
			set.MustAppend(c)
		}
		cdc, err := core.New(k)
		if err != nil {
			return false
		}
		r, err := cdc.EncodeSet(set)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, r); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		return back.Stream.Equal(r.Stream) && back.Counts == r.Counts &&
			back.K == r.K && back.OrigBits == r.OrigBits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
