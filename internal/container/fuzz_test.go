package container

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/tcube"
)

// FuzzRead checks the container parser never panics on arbitrary
// bytes and that anything it accepts re-serializes identically.
func FuzzRead(f *testing.F) {
	// Seed with a genuine container.
	set, err := tcube.Read("seed", strings.NewReader("0000000011111111\n01X011011XXXXX10\n"))
	if err != nil {
		f.Fatal(err)
	}
	cdc, err := core.New(8)
	if err != nil {
		f.Fatal(err)
	}
	r, err := cdc.EncodeSet(set)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, r); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	var buf4 bytes.Buffer
	if err := WriteVersion(&buf4, r, Magic4); err != nil {
		f.Fatal(err)
	}
	f.Add(buf4.Bytes())
	f.Add([]byte("N9C1"))
	f.Add([]byte("N9C4"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 200))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, r); err != nil {
			t.Fatalf("re-serialize of accepted container failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-read failed: %v", err)
		}
		if !again.Stream.Equal(r.Stream) || again.Counts != r.Counts {
			t.Fatal("container round trip drifted")
		}
	})
}
