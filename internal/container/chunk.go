package container

// Chunked v4 ("N9C4") framing. The header is byte-identical to v3
// except that the four stream totals (pattern count, |T_D|, block
// count, |T_E|) are zero placeholders — a streaming writer does not
// know them up front — and the payload is a sequence of CRC32C-framed
// chunks instead of two whole planes:
//
//	chunk:      uint32 trit count (1..MaxChunkTrits)
//	            value plane, ceil(count/8) bytes
//	            X-mask plane, same size
//	            CRC32C over count + both planes
//	terminator: uint32 zero
//	trailer:    uint32 pattern count, |T_D|, block count, |T_E|
//	            CRC32C over those 16 bytes
//
// Chunk boundaries carry no meaning; the concatenated trits are the
// same T_E a v3 container stores. Because every chunk is independently
// verifiable, a reader can hand verified segments to a streaming
// decoder as they arrive and, in lenient mode, salvage everything
// before the first bad chunk. v4 is set-oriented (Width >= 1) so the
// decoder can frame patterns without the trailer.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/robust"
)

// DefaultChunkTrits is the target chunk size: big enough to amortize
// the 12-byte frame overhead (<0.15%), small enough that a verifying
// reader buffers ~8 KiB per chunk.
const DefaultChunkTrits = 1 << 15

// MaxChunkTrits bounds a single chunk's trit count; a larger declared
// count is corruption, rejected before its planes are allocated.
const MaxChunkTrits = 1 << 22

// StreamHeader is what a chunked container needs to know up front.
type StreamHeader struct {
	K      int
	Width  int // scan width, >= 1: v4 containers always hold sets
	Assign core.Assignment
	Name   string
}

// StreamTrailer is the stream totals a chunked container records after
// its final chunk, CRC-protected and cross-checked against the chunks
// actually read.
type StreamTrailer struct {
	Patterns   int
	OrigBits   int
	Blocks     int
	StreamBits int
}

// ChunkWriter frames a compressed 9C stream into a chunked v4
// container as it is produced. It implements core.StreamSink, so a
// core.StreamEncoder can write straight into it; its working state is
// at most one chunk plus the largest single segment it was handed.
type ChunkWriter struct {
	cw      *countingWriter
	sp      *obs.Span
	hdr     StreamHeader
	chunk   int
	pending *bitvec.CubeBuilder
	pendLen int
	maxPend int // high-water mark of pendLen, pinned by memory tests
	written int // trits framed into chunks so far
	closed  bool
}

// NewChunkWriter validates the header, writes it, and returns a writer
// ready to receive stream segments. Close must be called to emit the
// terminator and trailer; without it the container is truncated.
func NewChunkWriter(w io.Writer, h StreamHeader) (*ChunkWriter, error) {
	if h.Width < 1 {
		return nil, fmt.Errorf("container: chunked width %d, want >= 1", h.Width)
	}
	if _, err := core.NewWithAssignment(h.K, h.Assign); err != nil {
		return nil, fmt.Errorf("container: chunked header: %w", err)
	}
	cw := &countingWriter{w: w}
	if _, err := cw.Write(buildHeader(Magic4, h.K, 0, h.Width, 0, 0, 0, h.Assign, h.Name)); err != nil {
		return nil, err
	}
	return &ChunkWriter{
		cw: cw, sp: obs.Active().Span("container.write_chunked"), hdr: h,
		chunk: DefaultChunkTrits, pending: bitvec.NewCubeBuilder(DefaultChunkTrits),
	}, nil
}

// WriteStream appends a stream segment, emitting full chunks as soon
// as enough trits have accumulated.
func (w *ChunkWriter) WriteStream(seg *bitvec.Cube) error {
	if w.closed {
		return fmt.Errorf("container: ChunkWriter used after Close")
	}
	w.pending.AppendCube(seg)
	w.pendLen += seg.Len()
	if w.pendLen > w.maxPend {
		w.maxPend = w.pendLen
	}
	if w.pendLen >= w.chunk {
		return w.flush(false)
	}
	return nil
}

// flush emits every full chunk in the pending buffer; with all set it
// also emits the final partial chunk.
func (w *ChunkWriter) flush(all bool) error {
	c := w.pending.Build() // resets the builder; re-append the tail below
	off := 0
	for c.Len()-off >= w.chunk {
		if err := w.emit(c.Slice(off, off+w.chunk)); err != nil {
			return err
		}
		off += w.chunk
	}
	if all && off < c.Len() {
		if err := w.emit(c.Slice(off, c.Len())); err != nil {
			return err
		}
		off = c.Len()
	}
	w.pending = bitvec.NewCubeBuilder(c.Len() - off)
	if off < c.Len() {
		w.pending.AppendCubeRange(c, off, c.Len())
	}
	w.pendLen = c.Len() - off
	return nil
}

// emit writes one framed chunk.
func (w *ChunkWriter) emit(c *bitvec.Cube) error {
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], uint32(c.Len()))
	val, mask := planes(c)
	h := crc32.New(castagnoli)
	h.Write(cnt[:])
	h.Write(val)
	h.Write(mask)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], h.Sum32())
	for _, b := range [][]byte{cnt[:], val, mask, crc[:]} {
		if _, err := w.cw.Write(b); err != nil {
			return err
		}
	}
	w.written += c.Len()
	return nil
}

// Close flushes the final partial chunk and writes the terminator and
// trailer from the encode summary, cross-checking that the summary's
// stream size matches the trits actually framed.
func (w *ChunkWriter) Close(sum core.StreamSummary) (err error) {
	if w.closed {
		return fmt.Errorf("container: ChunkWriter closed twice")
	}
	w.closed = true
	defer func() { observeIO(w.sp, "container.writes", "container.bytes_written", w.cw.n, err) }()
	if err := w.flush(true); err != nil {
		return err
	}
	if sum.StreamBits != w.written {
		return fmt.Errorf("container: summary claims %d stream trits, wrote %d", sum.StreamBits, w.written)
	}
	if sum.Width != w.hdr.Width {
		return fmt.Errorf("container: summary width %d != header width %d", sum.Width, w.hdr.Width)
	}
	var tail [24]byte // terminator + trailer + trailer CRC
	binary.LittleEndian.PutUint32(tail[4:], uint32(sum.Patterns))
	binary.LittleEndian.PutUint32(tail[8:], uint32(sum.OrigBits))
	binary.LittleEndian.PutUint32(tail[12:], uint32(sum.Blocks))
	binary.LittleEndian.PutUint32(tail[16:], uint32(sum.StreamBits))
	binary.LittleEndian.PutUint32(tail[20:], crc32.Checksum(tail[4:20], castagnoli))
	_, err = w.cw.Write(tail[:])
	return err
}

// MaxPending returns the writer's buffer high-water mark in trits.
func (w *ChunkWriter) MaxPending() int { return w.maxPend }

// ChunkReader reads a chunked v4 container incrementally. It
// implements core.StreamSource: each ReadStream returns one verified
// chunk's trits, so feeding it to a core.StreamDecoder decodes the
// container in bounded memory with every byte CRC-checked before use.
// A chunk that fails verification surfaces as a classified error, and
// every chunk before it has already been delivered intact.
type ChunkReader struct {
	r       io.Reader
	hdr     StreamHeader
	lim     robust.DecodeLimits
	payload int64 // cumulative framed payload bytes, capped by the limits
	trits   int   // trits delivered so far
	trailer *StreamTrailer
	done    bool
}

// NewChunkReader parses the header of a chunked ("N9C4") container and
// returns a reader positioned at the first chunk. Zero limit fields
// take the robust defaults. Non-chunked versions are rejected: use
// Read / ReadWithOptions for those.
func NewChunkReader(rd io.Reader, lim robust.DecodeLimits) (*ChunkReader, error) {
	diag := &Diag{HeaderCRCOK: true, PayloadCRCOK: true}
	h, err := readHeader(rd, diag)
	if err != nil {
		return nil, err
	}
	if h.version != Magic4 {
		return nil, fmt.Errorf("container: %s is not a chunked container: %w", h.version, robust.ErrCorrupt)
	}
	return newChunkReader(rd, h, lim.WithDefaults())
}

// newChunkReader wraps an already-parsed v4 header. The geometry
// checks here mirror the front half of validateGeometry; the totals
// half runs against the trailer once it is reached.
func newChunkReader(rd io.Reader, h *headerInfo, lim robust.DecodeLimits) (*ChunkReader, error) {
	if h.k < 2 || h.k%2 != 0 || h.k > 1<<20 {
		return nil, fmt.Errorf("container: implausible block size K=%d: %w", h.k, robust.ErrCorrupt)
	}
	if h.width < 1 {
		return nil, fmt.Errorf("container: chunked container width %d, want >= 1: %w", h.width, robust.ErrCorrupt)
	}
	if h.width > lim.MaxWidth {
		return nil, fmt.Errorf("container: width %d exceeds limit %d: %w", h.width, lim.MaxWidth, robust.ErrLimitExceeded)
	}
	return &ChunkReader{
		r:   rd,
		hdr: StreamHeader{K: h.k, Width: h.width, Assign: h.assign, Name: h.name},
		lim: lim,
	}, nil
}

// Header returns the parsed stream header.
func (r *ChunkReader) Header() StreamHeader { return r.hdr }

// ReadStream returns the next verified chunk, or io.EOF after the
// terminator and a valid trailer. Errors are classified: a bad chunk
// or trailer CRC is ErrChecksum, an implausible count ErrCorrupt, a
// short read ErrTruncated, cumulative payload beyond the limits
// ErrLimitExceeded.
func (r *ChunkReader) ReadStream() (*bitvec.Cube, error) {
	if r.done {
		return nil, io.EOF
	}
	var cnt [4]byte
	if _, err := io.ReadFull(r.r, cnt[:]); err != nil {
		return nil, fmt.Errorf("container: chunk header: %w: %v", robust.ErrTruncated, err)
	}
	count := int(binary.LittleEndian.Uint32(cnt[:]))
	if count == 0 {
		return nil, r.readTrailer()
	}
	if count > MaxChunkTrits {
		return nil, fmt.Errorf("container: chunk of %d trits exceeds %d: %w", count, MaxChunkTrits, robust.ErrCorrupt)
	}
	nbytes := (count + 7) / 8
	if r.payload += int64(2*nbytes + 8); r.payload > int64(r.lim.MaxPayloadBytes) {
		return nil, fmt.Errorf("container: cumulative payload %d bytes exceeds limit %d: %w", r.payload, r.lim.MaxPayloadBytes, robust.ErrLimitExceeded)
	}
	buf := make([]byte, 2*nbytes+4)
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("container: chunk body: %w: %v", robust.ErrTruncated, err)
	}
	val, mask := buf[:nbytes], buf[nbytes:2*nbytes]
	h := crc32.New(castagnoli)
	h.Write(cnt[:])
	h.Write(buf[:2*nbytes])
	if got, want := h.Sum32(), binary.LittleEndian.Uint32(buf[2*nbytes:]); got != want {
		return nil, fmt.Errorf("container: chunk CRC32C %08x, stored %08x: %w", got, want, robust.ErrChecksum)
	}
	c, _, err := unplanes(val, mask, count, false)
	if err != nil {
		return nil, err
	}
	r.trits += count
	return c, nil
}

// readTrailer verifies the trailer after the zero terminator, latches
// done and returns io.EOF so the StreamSource contract sees a clean
// end of stream.
func (r *ChunkReader) readTrailer() error {
	var tr [20]byte
	if _, err := io.ReadFull(r.r, tr[:]); err != nil {
		return fmt.Errorf("container: trailer: %w: %v", robust.ErrTruncated, err)
	}
	if got, want := crc32.Checksum(tr[:16], castagnoli), binary.LittleEndian.Uint32(tr[16:]); got != want {
		return fmt.Errorf("container: trailer CRC32C %08x, stored %08x: %w", got, want, robust.ErrChecksum)
	}
	t := &StreamTrailer{
		Patterns:   int(binary.LittleEndian.Uint32(tr[0:])),
		OrigBits:   int(binary.LittleEndian.Uint32(tr[4:])),
		Blocks:     int(binary.LittleEndian.Uint32(tr[8:])),
		StreamBits: int(binary.LittleEndian.Uint32(tr[12:])),
	}
	if t.StreamBits != r.trits {
		return fmt.Errorf("container: trailer claims %d stream trits, chunks held %d: %w", t.StreamBits, r.trits, robust.ErrCorrupt)
	}
	if err := validateGeometry(r.hdr.K, t.Patterns, r.hdr.Width, t.OrigBits, t.Blocks, t.StreamBits, r.lim); err != nil {
		return err
	}
	r.trailer = t
	r.done = true
	return io.EOF
}

// Trailer returns the verified stream totals, available only after
// ReadStream has returned io.EOF.
func (r *ChunkReader) Trailer() (StreamTrailer, bool) {
	if r.trailer == nil {
		return StreamTrailer{}, false
	}
	return *r.trailer, true
}

// readV4 is the whole-container read path for chunked containers,
// invoked by ReadWithOptions after the shared header parse. Strict
// mode demands every chunk, the terminator and the trailer verify;
// lenient mode salvages the verified prefix and derives the geometry
// by streaming-decoding it when the trailer is unreachable.
func readV4(cr io.Reader, h *headerInfo, opt Options, diag *Diag) (*core.Result, *Diag, error) {
	lim := opt.Limits.WithDefaults()
	chr, err := newChunkReader(cr, h, lim)
	if err != nil {
		return nil, diag, err
	}
	b := bitvec.NewCubeBuilder(0)
	trits := 0
	for {
		seg, err := chr.ReadStream()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !opt.Lenient || robust.Classify(err) == "limit" {
				return nil, diag, err
			}
			// Salvage: keep every chunk before the fault, record it, and
			// reconstruct the geometry below since the trailer is
			// unreachable behind the bad chunk.
			diag.StreamErr = err
			if robust.Classify(err) == "checksum" {
				diag.PayloadCRCOK = false
			}
			break
		}
		b.AppendCube(seg)
		trits += seg.Len()
	}
	stream := b.Build()

	if tr, ok := chr.Trailer(); ok {
		h.patterns, h.origBits, h.blocks, h.streamBits = tr.Patterns, tr.OrigBits, tr.Blocks, tr.StreamBits
		if n, _ := cr.Read(make([]byte, 1)); n != 0 {
			return nil, diag, fmt.Errorf("container: trailing bytes: %w", robust.ErrCorrupt)
		}
		return finishResult(h, stream, opt.Lenient, diag)
	}

	// No trailer: count the patterns that decode cleanly from the
	// salvaged prefix and report the geometry they span. finishResult
	// sees diag.StreamErr set and skips re-validation; the caller
	// follows up with a partial decode, exactly as for a damaged v3.
	cdc, err := core.NewWithAssignment(h.k, h.assign)
	if err != nil {
		return nil, diag, fmt.Errorf("container: %w: %w", robust.ErrCorrupt, err)
	}
	dec, err := cdc.NewStreamDecoder(core.NewCubeSource(stream), h.width, lim)
	if err != nil {
		return nil, diag, err
	}
	patterns := 0
	for {
		if _, err := dec.ReadPattern(); err != nil {
			break
		}
		patterns++
	}
	blocksPer := (h.width + h.k - 1) / h.k
	h.patterns, h.origBits = patterns, patterns*h.width
	h.blocks, h.streamBits = patterns*blocksPer, stream.Len()
	return finishResult(h, stream, opt.Lenient, diag)
}
