package atpg

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

func TestTestabilityKnownValues(t *testing.T) {
	// y = AND(a, b); z = NOT(y). Classic SCOAP values:
	// CC(a)=CC(b)=(1,1); CC1(y)=1+1+1=3, CC0(y)=min(1,1)+1=2;
	// CC0(z)=CC1(y)+1=4, CC1(z)=CC0(y)+1=3.
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
y = AND(a, b)
z = NOT(y)
`
	c, err := netlist.ParseBench("sc", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	tm := ComputeTestability(sv)
	get := func(name string) int {
		g, ok := c.GateByName(name)
		if !ok {
			t.Fatalf("no net %q", name)
		}
		return g.ID
	}
	y, z, a, b := get("y"), get("z"), get("a"), get("b")
	if tm.CC1[y] != 3 || tm.CC0[y] != 2 {
		t.Fatalf("CC(y) = (%d,%d)", tm.CC0[y], tm.CC1[y])
	}
	if tm.CC0[z] != 4 || tm.CC1[z] != 3 {
		t.Fatalf("CC(z) = (%d,%d)", tm.CC0[z], tm.CC1[z])
	}
	// Observability: z is the PO, CO(z)=0; CO(y)=0+1=1 (through NOT);
	// CO(a) = CO(y) + CC1(b) + 1 = 3.
	if tm.CO[z] != 0 || tm.CO[y] != 1 {
		t.Fatalf("CO(z)=%d CO(y)=%d", tm.CO[z], tm.CO[y])
	}
	if tm.CO[a] != 3 || tm.CO[b] != 3 {
		t.Fatalf("CO(a)=%d CO(b)=%d", tm.CO[a], tm.CO[b])
	}
}

func TestTestabilityXorAndUnobservable(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
dead = OR(a, b)
`
	c, err := netlist.ParseBench("sx", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	tm := ComputeTestability(sv)
	y, _ := c.GateByName("y")
	// XOR: CC1 = min(1+1, 1+1)+1 = 3; CC0 = min(1+1, 1+1)+1 = 3.
	if tm.CC0[y.ID] != 3 || tm.CC1[y.ID] != 3 {
		t.Fatalf("CC(xor) = (%d,%d)", tm.CC0[y.ID], tm.CC1[y.ID])
	}
	dead, _ := c.GateByName("dead")
	if tm.CO[dead.ID] < scoapCap {
		t.Fatalf("unobservable gate got finite CO %d", tm.CO[dead.ID])
	}
}

func TestTestabilityOnScanCells(t *testing.T) {
	sv := scanView(t, s27, "s27")
	tm := ComputeTestability(sv)
	for _, id := range sv.PPIs {
		if tm.CC0[id] != 1 || tm.CC1[id] != 1 {
			t.Fatalf("PPI %d controllability (%d,%d)", id, tm.CC0[id], tm.CC1[id])
		}
	}
	for _, id := range sv.PPOs {
		if tm.CO[id] != 0 {
			t.Fatalf("PPO %d observability %d", id, tm.CO[id])
		}
	}
	// In a fully scannable circuit every net is observable.
	for _, g := range sv.Circuit.Gates {
		if tm.CO[g.ID] >= scoapCap {
			t.Fatalf("net %s unobservable in s27", g.Name)
		}
	}
}
