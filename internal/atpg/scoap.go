package atpg

import (
	"repro/internal/netlist"
)

// Testability holds SCOAP-style measures for every net of a scan view:
// CC0/CC1 estimate the effort to set the net to 0/1 (primary inputs
// and scan cells cost 1), CO the effort to observe it at a PPO. PODEM
// uses them to steer backtrace toward easy-to-control inputs and the
// D-frontier toward easy-to-observe gates.
type Testability struct {
	CC0, CC1, CO []int
}

// infinity-ish cap keeps sums from overflowing on deep circuits.
const scoapCap = 1 << 28

func addCap(a, b int) int {
	s := a + b
	if s > scoapCap {
		return scoapCap
	}
	return s
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ComputeTestability runs the SCOAP forward (controllability) and
// backward (observability) passes over the scan view.
func ComputeTestability(sv *netlist.ScanView) *Testability {
	c := sv.Circuit
	n := c.NumGates()
	t := &Testability{CC0: make([]int, n), CC1: make([]int, n), CO: make([]int, n)}

	// Controllability, forward in topological order.
	for _, id := range sv.Order {
		g := &c.Gates[id]
		switch g.Type {
		case netlist.Input, netlist.DFF:
			t.CC0[id], t.CC1[id] = 1, 1
		case netlist.Buf:
			t.CC0[id] = addCap(t.CC0[g.Fanin[0]], 1)
			t.CC1[id] = addCap(t.CC1[g.Fanin[0]], 1)
		case netlist.Not:
			t.CC0[id] = addCap(t.CC1[g.Fanin[0]], 1)
			t.CC1[id] = addCap(t.CC0[g.Fanin[0]], 1)
		case netlist.And, netlist.Nand:
			all1, min0 := 0, scoapCap
			for _, f := range g.Fanin {
				all1 = addCap(all1, t.CC1[f])
				min0 = minInt(min0, t.CC0[f])
			}
			c1 := addCap(all1, 1)
			c0 := addCap(min0, 1)
			if g.Type == netlist.Nand {
				c0, c1 = c1, c0
			}
			t.CC0[id], t.CC1[id] = c0, c1
		case netlist.Or, netlist.Nor:
			all0, min1 := 0, scoapCap
			for _, f := range g.Fanin {
				all0 = addCap(all0, t.CC0[f])
				min1 = minInt(min1, t.CC1[f])
			}
			c0 := addCap(all0, 1)
			c1 := addCap(min1, 1)
			if g.Type == netlist.Nor {
				c0, c1 = c1, c0
			}
			t.CC0[id], t.CC1[id] = c0, c1
		case netlist.Xor, netlist.Xnor:
			// Fold pairwise: parity-0 and parity-1 costs.
			c0, c1 := 0, scoapCap // empty XOR = 0
			first := true
			for _, f := range g.Fanin {
				f0, f1 := t.CC0[f], t.CC1[f]
				if first {
					c0, c1 = f0, f1
					first = false
					continue
				}
				n0 := minInt(addCap(c0, f0), addCap(c1, f1))
				n1 := minInt(addCap(c0, f1), addCap(c1, f0))
				c0, c1 = n0, n1
			}
			c0 = addCap(c0, 1)
			c1 = addCap(c1, 1)
			if g.Type == netlist.Xnor {
				c0, c1 = c1, c0
			}
			t.CC0[id], t.CC1[id] = c0, c1
		}
	}

	// Observability, backward: PPOs observe at cost 0; an input of a
	// gate is observable at the gate's CO plus the cost of setting the
	// other inputs to non-controlling values (for XOR: controlling
	// values don't exist, pay min-controllability of the others).
	for i := range t.CO {
		t.CO[i] = scoapCap
	}
	for _, id := range sv.PPOs {
		t.CO[id] = 0
	}
	for i := len(sv.Order) - 1; i >= 0; i-- {
		id := sv.Order[i]
		g := &c.Gates[id]
		if g.Type == netlist.Input || g.Type == netlist.DFF {
			continue
		}
		base := t.CO[id]
		if base >= scoapCap {
			continue
		}
		for pin, f := range g.Fanin {
			side := 0
			for pin2, f2 := range g.Fanin {
				if pin2 == pin {
					continue
				}
				switch g.Type {
				case netlist.And, netlist.Nand:
					side = addCap(side, t.CC1[f2])
				case netlist.Or, netlist.Nor:
					side = addCap(side, t.CC0[f2])
				case netlist.Xor, netlist.Xnor:
					side = addCap(side, minInt(t.CC0[f2], t.CC1[f2]))
				}
			}
			co := addCap(addCap(base, side), 1)
			if co < t.CO[f] {
				t.CO[f] = co
			}
		}
	}
	return t
}
