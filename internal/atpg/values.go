// Package atpg generates deterministic test cubes for single stuck-at
// faults using the PODEM algorithm over the five-valued D-algebra.
// Unassigned primary inputs stay X in the produced cubes, giving the
// don't-care-rich precomputed test sets (T_D) that the 9C technique
// compresses. A reverse-order fault-simulation pass compacts the set.
package atpg

// V is a five-valued D-algebra value: the pair (good-machine value,
// faulty-machine value) with X meaning unknown-in-both.
type V uint8

// D-algebra values.
const (
	VX  V = iota // unknown
	V0           // 0 in both machines
	V1           // 1 in both machines
	VD           // 1 in good, 0 in faulty ("D")
	VDB          // 0 in good, 1 in faulty ("D-bar")
)

// String renders the conventional symbol.
func (v V) String() string {
	switch v {
	case VX:
		return "X"
	case V0:
		return "0"
	case V1:
		return "1"
	case VD:
		return "D"
	case VDB:
		return "D'"
	}
	return "?"
}

// tern is a three-valued component: 0, 1 or unknown.
type tern uint8

const (
	t0 tern = iota
	t1
	tX
)

// split returns the (good, faulty) components.
func (v V) split() (tern, tern) {
	switch v {
	case V0:
		return t0, t0
	case V1:
		return t1, t1
	case VD:
		return t1, t0
	case VDB:
		return t0, t1
	}
	return tX, tX
}

// join maps a component pair back to a V; a pair with any unknown
// component collapses to VX (the standard 5-valued approximation).
func join(g, f tern) V {
	switch {
	case g == t0 && f == t0:
		return V0
	case g == t1 && f == t1:
		return V1
	case g == t1 && f == t0:
		return VD
	case g == t0 && f == t1:
		return VDB
	}
	return VX
}

func and3(a, b tern) tern {
	if a == t0 || b == t0 {
		return t0
	}
	if a == t1 && b == t1 {
		return t1
	}
	return tX
}

func or3(a, b tern) tern {
	if a == t1 || b == t1 {
		return t1
	}
	if a == t0 && b == t0 {
		return t0
	}
	return tX
}

func xor3(a, b tern) tern {
	if a == tX || b == tX {
		return tX
	}
	if a == b {
		return t0
	}
	return t1
}

func not3(a tern) tern {
	switch a {
	case t0:
		return t1
	case t1:
		return t0
	}
	return tX
}

// And5 is 5-valued AND.
func And5(a, b V) V {
	ag, af := a.split()
	bg, bf := b.split()
	return join(and3(ag, bg), and3(af, bf))
}

// Or5 is 5-valued OR.
func Or5(a, b V) V {
	ag, af := a.split()
	bg, bf := b.split()
	return join(or3(ag, bg), or3(af, bf))
}

// Xor5 is 5-valued XOR.
func Xor5(a, b V) V {
	ag, af := a.split()
	bg, bf := b.split()
	return join(xor3(ag, bg), xor3(af, bf))
}

// Not5 is 5-valued NOT.
func Not5(a V) V {
	ag, af := a.split()
	return join(not3(ag), not3(af))
}

// IsError reports whether the value carries a fault effect.
func (v V) IsError() bool { return v == VD || v == VDB }
