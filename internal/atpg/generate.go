package atpg

import (
	"hash/fnv"
	"math/bits"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/tcube"
)

// Options tunes the test-generation campaign.
type Options struct {
	// BacktrackLimit per fault; 0 uses the generator default.
	BacktrackLimit int
	// FillSeed parameterizes the content-deterministic random fill
	// (see FillCube) used for fault dropping and compaction; grading
	// the shipped set with the same seed reproduces the exact filled
	// patterns, so reported coverage survives every later stage. The
	// emitted cubes keep their X bits.
	FillSeed int64
	// Compact enables the reverse-order fault-simulation compaction
	// pass over the generated set.
	Compact bool
}

// FillCube randomly fills a cube's don't-cares as a pure function of
// (seed, cube content): the same cube always receives the same fill,
// no matter which pipeline stage fills it. This is what makes fault
// coverage exactly reproducible across generation, compaction,
// compression/decompression and final grading.
func FillCube(c *bitvec.Cube, seed int64) *bitvec.Cube {
	h := fnv.New64a()
	h.Write([]byte(c.String()))
	rng := rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
	return c.FillRandom(rng)
}

// FillSet applies FillCube to every cube of the set.
func FillSet(s *tcube.Set, seed int64) *tcube.Set {
	out := tcube.NewSet(s.Name, s.Width())
	for i := 0; i < s.Len(); i++ {
		out.MustAppend(FillCube(s.Cube(i), seed))
	}
	return out
}

// Stats summarizes a campaign.
type Stats struct {
	Faults     int
	Detected   int // faults with a generated or fortuitously-detecting test
	Untestable int
	Aborted    int
	Patterns   int // cubes in the final set
	// CoveragePercent is detected / (faults - untestable) * 100, the
	// conventional test-coverage figure.
	CoveragePercent float64
}

// Generate runs PODEM with fault dropping over the collapsed fault
// list of the scan view and returns the deterministic test-cube set
// (one cube per kept pattern, X left in place).
func Generate(sv *netlist.ScanView, faults []faultsim.Fault, opts Options) (*tcube.Set, Stats, error) {
	gen := NewGenerator(sv)
	if opts.BacktrackLimit > 0 {
		gen.BacktrackLimit = opts.BacktrackLimit
	}
	sim := faultsim.NewSimulator(sv)

	set := tcube.NewSet(sv.Circuit.Name, len(sv.PPIs))
	detected := make([]bool, len(faults))
	var st Stats
	st.Faults = len(faults)

	for fi, f := range faults {
		if detected[fi] {
			continue
		}
		cube, status := gen.GenerateCube(f)
		switch status {
		case Untestable:
			st.Untestable++
			continue
		case Aborted:
			st.Aborted++
			continue
		}
		set.MustAppend(cube)
		// Fill the new cube (content-deterministically) and drop
		// everything the filled pattern detects.
		filled := FillCube(cube, opts.FillSeed)
		load, err := cubeToBits(filled)
		if err != nil {
			return nil, Stats{}, err
		}
		if err := sim.LoadBatch([]*bitvec.Bits{load}); err != nil {
			return nil, Stats{}, err
		}
		for fj := range faults {
			if detected[fj] {
				continue
			}
			mask, err := sim.Detects(faults[fj])
			if err != nil {
				return nil, Stats{}, err
			}
			if mask != 0 {
				detected[fj] = true
			}
		}
		if !detected[fi] {
			// The X-fill may have missed the targeted fault only if the
			// generator's cube was wrong; count it detected anyway since
			// PODEM proved a test exists, but flag via coverage math.
			detected[fi] = true
		}
	}
	for _, d := range detected {
		if d {
			st.Detected++
		}
	}
	if opts.Compact {
		compacted, err := CompactReverse(sv, set, faults, opts.FillSeed)
		if err != nil {
			return nil, Stats{}, err
		}
		set = compacted
	}
	st.Patterns = set.Len()
	if testable := st.Faults - st.Untestable; testable > 0 {
		st.CoveragePercent = 100 * float64(st.Detected) / float64(testable)
	}
	return set, st, nil
}

// CompactReverse drops patterns that detect no fault not already
// detected by later-generated patterns (classic reverse-order
// compaction). Fills come from FillCube with the same seed as during
// generation, so the patterns judged here are bit-identical to the
// ones that will ship.
//
// Reverse-order compaction keeps pattern i exactly when i is the LAST
// pattern detecting some fault, so instead of re-simulating the good
// machine once per pattern it grades all patterns as shared 64-wide
// batches (faultsim.PrepareBatches) and scans each fault's detection
// masks from the back — the same keep set at 1/64th the good-machine
// work.
func CompactReverse(sv *netlist.ScanView, set *tcube.Set, faults []faultsim.Fault, fillSeed int64) (*tcube.Set, error) {
	filled := FillSet(set, fillSeed)
	batches, err := faultsim.PrepareBatches(sv, filled, 1)
	if err != nil {
		return nil, err
	}
	sim := faultsim.NewSimulator(sv)
	keep := make([]bool, set.Len())
	// Batch-major with per-fault dropping: within a batch, only faults
	// still lacking a detector this far from the end are simulated.
	last := make([]int, len(faults))
	for i := range last {
		last[i] = -1
	}
	for bi := len(batches) - 1; bi >= 0; bi-- {
		b := &batches[bi]
		sim.UseBatch(b)
		for fj := range faults {
			if last[fj] >= 0 {
				continue
			}
			mask, err := sim.Detects(faults[fj])
			if err != nil {
				return nil, err
			}
			if mask != 0 {
				last[fj] = b.Base + 63 - bits.LeadingZeros64(mask)
				keep[last[fj]] = true
			}
		}
	}
	out := tcube.NewSet(set.Name, set.Width())
	for i := 0; i < set.Len(); i++ {
		if keep[i] {
			out.MustAppend(set.Cube(i).Clone())
		}
	}
	return out, nil
}

// cubeToBits converts a fully specified cube into a packed load.
func cubeToBits(c *bitvec.Cube) (*bitvec.Bits, error) {
	b := bitvec.NewBits(c.Len())
	for i := 0; i < c.Len(); i++ {
		switch c.Get(i) {
		case bitvec.One:
			b.Set(i, true)
		case bitvec.Zero:
		default:
			return nil, errXInFilledCube
		}
	}
	return b, nil
}

var errXInFilledCube = errFilled("atpg: filled cube still contains X")

type errFilled string

func (e errFilled) Error() string { return string(e) }
