package atpg

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// Status is the outcome of test generation for one fault.
type Status int

// Test-generation outcomes.
const (
	Detected   Status = iota // a test cube was produced
	Untestable               // search space exhausted: fault is redundant
	Aborted                  // backtrack limit reached
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Detected:
		return "detected"
	case Untestable:
		return "untestable"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Generator runs PODEM on a scan view.
type Generator struct {
	sv *netlist.ScanView
	// BacktrackLimit bounds the search per fault; beyond it the fault
	// is reported Aborted. The default used by NewGenerator is 2000.
	BacktrackLimit int

	val     []V   // per-gate 5-valued plane
	piIndex []int // gate id -> PPI position, -1 otherwise
	tm      *Testability

	fault faultsim.Fault
	nBack int
}

// NewGenerator returns a PODEM generator for the scan view.
func NewGenerator(sv *netlist.ScanView) *Generator {
	g := &Generator{
		sv:             sv,
		BacktrackLimit: 2000,
		val:            make([]V, sv.Circuit.NumGates()),
		piIndex:        make([]int, sv.Circuit.NumGates()),
		tm:             ComputeTestability(sv),
	}
	for i := range g.piIndex {
		g.piIndex[i] = -1
	}
	for i, id := range sv.PPIs {
		g.piIndex[id] = i
	}
	return g
}

// GenerateCube attempts to generate a test cube for fault f. On
// Detected, the returned cube has one trit per PPI in scan-load order
// (unassigned inputs stay X). Otherwise the cube is nil.
func (g *Generator) GenerateCube(f faultsim.Fault) (*bitvec.Cube, Status) {
	g.fault = f
	g.nBack = 0
	for i := range g.val {
		g.val[i] = VX
	}
	g.imply()
	st := g.search()
	if st != Detected {
		return nil, st
	}
	cube := bitvec.NewCube(len(g.sv.PPIs))
	for i, id := range g.sv.PPIs {
		switch g.val[id] {
		case V0, VDB:
			cube.Set(i, bitvec.Zero)
		case V1, VD:
			cube.Set(i, bitvec.One)
		}
	}
	return cube, Detected
}

// search is the PODEM decision loop.
func (g *Generator) search() Status {
	if g.success() {
		return Detected
	}
	if g.failed() {
		return Untestable
	}
	net, want, ok := g.objective()
	if !ok {
		return Untestable
	}
	pi, v, ok := g.backtrace(net, want)
	if !ok {
		return Untestable
	}
	for _, tryV := range []V{v, Not5(v)} {
		g.assign(pi, tryV)
		g.imply()
		st := g.search()
		if st == Detected || st == Aborted {
			return st
		}
		g.assign(pi, VX)
		g.imply()
		g.nBack++
		if g.nBack > g.BacktrackLimit {
			return Aborted
		}
	}
	return Untestable
}

// assign sets a PPI value directly.
func (g *Generator) assign(piGate int, v V) { g.val[piGate] = v }

// success reports whether a fault effect reaches an observation point.
func (g *Generator) success() bool {
	c := g.sv.Circuit
	// DFF input-pin faults are observed directly at capture: detection
	// just requires the captured net to carry the non-stuck good value.
	if c.Gates[g.fault.Gate].Type == netlist.DFF && g.fault.Pin == 0 {
		src := c.Gates[g.fault.Gate].Fanin[0]
		if g.fault.StuckAt {
			return g.val[src] == V0
		}
		return g.val[src] == V1
	}
	for _, id := range g.sv.PPOs {
		if g.val[id].IsError() {
			return true
		}
	}
	return false
}

// failed reports whether the current assignment can no longer detect
// the fault: the fault site is definitely at its stuck value, or the
// effect was activated but every propagation path has died.
func (g *Generator) failed() bool {
	siteVal := g.siteValue()
	stuckV := V0
	if g.fault.StuckAt {
		stuckV = V1
	}
	if siteVal == stuckV {
		return true // activation impossible
	}
	if siteVal == VX {
		return false // activation still open
	}
	// Site is activated (carries D/D'); fail if the D-frontier is
	// empty and no PPO sees the effect.
	if g.success() {
		return false
	}
	return len(g.dFrontier()) == 0
}

// siteValue returns the 5-valued state of the faulty line.
func (g *Generator) siteValue() V {
	c := g.sv.Circuit
	gg := c.Gates[g.fault.Gate]
	if gg.Type == netlist.DFF && g.fault.Pin == 0 {
		// The branch into the scan cell: its good value is the source
		// net's; represent activation via the source value.
		return g.val[gg.Fanin[0]]
	}
	if g.fault.Pin < 0 {
		return g.val[g.fault.Gate]
	}
	return g.val[gg.Fanin[g.fault.Pin]]
}

// dFrontier lists gates whose output is X while some input carries a
// fault effect.
func (g *Generator) dFrontier() []int {
	c := g.sv.Circuit
	var out []int
	for _, id := range g.sv.Order {
		gg := &c.Gates[id]
		if gg.Type == netlist.Input || gg.Type == netlist.DFF {
			continue
		}
		if g.val[id] != VX {
			continue
		}
		for pin, f := range gg.Fanin {
			v := g.val[f]
			// An input-pin fault's effect is visible only to its own
			// gate; apply injection when scanning that gate's inputs.
			if g.fault.Gate == id && g.fault.Pin == pin {
				v = injectStuck(v, g.fault.StuckAt)
			}
			if v.IsError() {
				out = append(out, id)
				break
			}
		}
	}
	return out
}

// objective picks the next (net, value) goal: activate the fault if
// still possible, else advance the D-frontier.
func (g *Generator) objective() (net int, want V, ok bool) {
	c := g.sv.Circuit
	if g.siteValue() == VX {
		want = V1
		if g.fault.StuckAt {
			want = V0
		}
		gg := c.Gates[g.fault.Gate]
		switch {
		case gg.Type == netlist.DFF && g.fault.Pin == 0:
			return gg.Fanin[0], want, true
		case g.fault.Pin < 0:
			return g.fault.Gate, want, true
		default:
			return gg.Fanin[g.fault.Pin], want, true
		}
	}
	df := g.dFrontier()
	if len(df) == 0 {
		return 0, VX, false
	}
	// Choose the frontier gate easiest to observe (SCOAP CO), then the
	// X input cheapest to drive to the non-controlling value.
	best := df[0]
	for _, id := range df[1:] {
		if g.tm.CO[id] < g.tm.CO[best] {
			best = id
		}
	}
	gg := &c.Gates[best]
	wantV := nonControlling(gg.Type)
	sel, selCost := -1, scoapCap+1
	for _, f := range gg.Fanin {
		if g.val[f] != VX {
			continue
		}
		cost := g.tm.CC0[f]
		if wantV == V1 {
			cost = g.tm.CC1[f]
		}
		if cost < selCost {
			sel, selCost = f, cost
		}
	}
	if sel < 0 {
		return 0, VX, false
	}
	return sel, wantV, true
}

// nonControlling returns the input value that lets a fault effect pass
// through a gate of type t (arbitrary for XOR-class gates).
func nonControlling(t netlist.GateType) V {
	switch t {
	case netlist.And, netlist.Nand:
		return V1
	case netlist.Or, netlist.Nor:
		return V0
	}
	return V0
}

// backtrace maps an objective (net, value) to a PPI assignment by
// walking X-valued nets backwards, complementing through inverting
// gates.
func (g *Generator) backtrace(net int, want V) (pi int, v V, ok bool) {
	c := g.sv.Circuit
	for {
		if g.piIndex[net] >= 0 {
			return net, want, true
		}
		gg := &c.Gates[net]
		if gg.Type == netlist.Input || gg.Type == netlist.DFF {
			// A source that is not a PPI cannot exist in a scan view.
			return 0, VX, false
		}
		if gg.Type.Inverting() {
			want = Not5(want)
		}
		// Among the X fanins, follow the one SCOAP says is cheapest to
		// drive to the wanted value.
		next, cost := -1, scoapCap+1
		for _, f := range gg.Fanin {
			if g.val[f] != VX {
				continue
			}
			c := g.tm.CC0[f]
			if want == V1 {
				c = g.tm.CC1[f]
			}
			if c < cost {
				next, cost = f, c
			}
		}
		if next < 0 {
			return 0, VX, false
		}
		net = next
	}
}

// imply forward-propagates the 5-valued plane with the fault injected.
func (g *Generator) imply() {
	c := g.sv.Circuit
	for _, id := range g.sv.Order {
		gg := &c.Gates[id]
		if gg.Type != netlist.Input && gg.Type != netlist.DFF {
			g.val[id] = g.evalGate(gg)
		}
		// Output-fault injection (also applies to stuck PIs/scan cells).
		if g.fault.Pin < 0 && g.fault.Gate == id {
			g.val[id] = injectStuck(g.val[id], g.fault.StuckAt)
		}
	}
}

// evalGate computes the 5-valued output of a combinational gate,
// applying input-pin fault injection when this gate hosts the fault.
func (g *Generator) evalGate(gg *netlist.Gate) V {
	in := func(pin int) V {
		v := g.val[gg.Fanin[pin]]
		if g.fault.Pin == pin && g.fault.Gate == gg.ID {
			v = injectStuck(v, g.fault.StuckAt)
		}
		return v
	}
	var v V
	switch gg.Type {
	case netlist.Buf:
		v = in(0)
	case netlist.Not:
		v = Not5(in(0))
	case netlist.And, netlist.Nand:
		v = V1
		for pin := range gg.Fanin {
			v = And5(v, in(pin))
		}
		if gg.Type == netlist.Nand {
			v = Not5(v)
		}
	case netlist.Or, netlist.Nor:
		v = V0
		for pin := range gg.Fanin {
			v = Or5(v, in(pin))
		}
		if gg.Type == netlist.Nor {
			v = Not5(v)
		}
	case netlist.Xor, netlist.Xnor:
		v = V0
		for pin := range gg.Fanin {
			v = Xor5(v, in(pin))
		}
		if gg.Type == netlist.Xnor {
			v = Not5(v)
		}
	}
	return v
}

// injectStuck transforms a line value at the fault site: the faulty
// component is forced to the stuck value.
func injectStuck(v V, stuckAt bool) V {
	good, _ := v.split()
	f := t0
	if stuckAt {
		f = t1
	}
	return join(good, f)
}
