package atpg

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/faultsim"
	"repro/internal/netlist"
)

const s27 = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
`

func scanView(t *testing.T, src, name string) *netlist.ScanView {
	t.Helper()
	c, err := netlist.ParseBench(name, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	return sv
}

func TestDValueAlgebra(t *testing.T) {
	if got := And5(VD, V1); got != VD {
		t.Errorf("D AND 1 = %s", got)
	}
	if got := And5(VD, V0); got != V0 {
		t.Errorf("D AND 0 = %s", got)
	}
	if got := And5(VD, VDB); got != V0 {
		t.Errorf("D AND D' = %s", got)
	}
	if got := Or5(VDB, V0); got != VDB {
		t.Errorf("D' OR 0 = %s", got)
	}
	if got := Not5(VD); got != VDB {
		t.Errorf("NOT D = %s", got)
	}
	if got := Xor5(VD, VD); got != V0 {
		t.Errorf("D XOR D = %s", got)
	}
	if got := Xor5(VD, V1); got != VDB {
		t.Errorf("D XOR 1 = %s", got)
	}
	if got := And5(VX, V0); got != V0 {
		t.Errorf("X AND 0 = %s", got)
	}
	if got := Or5(VX, V1); got != V1 {
		t.Errorf("X OR 1 = %s", got)
	}
	if got := And5(VX, V1); got != VX {
		t.Errorf("X AND 1 = %s", got)
	}
	if !VD.IsError() || !VDB.IsError() || V1.IsError() {
		t.Error("IsError misclassifies")
	}
	for _, v := range []V{VX, V0, V1, VD, VDB} {
		if v.String() == "?" {
			t.Errorf("missing String for %d", v)
		}
	}
	if V(9).String() != "?" {
		t.Error("invalid V should render ?")
	}
	if Detected.String() != "detected" || Untestable.String() != "untestable" || Aborted.String() != "aborted" {
		t.Error("Status.String mismatch")
	}
}

// verifyCube checks with the fault simulator that the generated cube,
// arbitrarily filled, detects the fault (a PODEM cube must detect the
// fault under every fill of its X bits).
func verifyCube(t *testing.T, sv *netlist.ScanView, f faultsim.Fault, cube *bitvec.Cube) {
	t.Helper()
	sim := faultsim.NewSimulator(sv)
	for _, fill := range []*bitvec.Cube{cube.FillConst(bitvec.Zero), cube.FillConst(bitvec.One), cube.FillAdjacent()} {
		load, err := cubeToBits(fill)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.LoadBatch([]*bitvec.Bits{load}); err != nil {
			t.Fatal(err)
		}
		mask, err := sim.Detects(f)
		if err != nil {
			t.Fatal(err)
		}
		if mask == 0 {
			t.Fatalf("fault %v not detected by cube %s (fill %s)", f, cube, fill)
		}
	}
}

func TestGenerateCubeSimpleGate(t *testing.T) {
	sv := scanView(t, "INPUT(A)\nINPUT(B)\nOUTPUT(Y)\nY = AND(A, B)\n", "and2")
	gen := NewGenerator(sv)
	y, _ := sv.Circuit.GateByName("Y")
	for _, f := range []faultsim.Fault{
		{Gate: y.ID, Pin: -1, StuckAt: false},
		{Gate: y.ID, Pin: -1, StuckAt: true},
		{Gate: y.ID, Pin: 0, StuckAt: true},
		{Gate: y.ID, Pin: 1, StuckAt: true},
	} {
		cube, st := gen.GenerateCube(f)
		if st != Detected {
			t.Fatalf("fault %v: %s", f, st)
		}
		verifyCube(t, sv, f, cube)
	}
}

func TestGenerateCubeDetectsRedundancy(t *testing.T) {
	// Y = OR(A, NOT(A)) is constantly 1: Y s-a-1 is untestable.
	sv := scanView(t, "INPUT(A)\nOUTPUT(Y)\nN = NOT(A)\nY = OR(A, N)\n", "red")
	gen := NewGenerator(sv)
	y, _ := sv.Circuit.GateByName("Y")
	if _, st := gen.GenerateCube(faultsim.Fault{Gate: y.ID, Pin: -1, StuckAt: true}); st != Untestable {
		t.Fatalf("constant-1 output s-a-1 reported %s", st)
	}
	if cube, st := gen.GenerateCube(faultsim.Fault{Gate: y.ID, Pin: -1, StuckAt: false}); st != Detected {
		t.Fatalf("s-a-0 reported %s", st)
	} else {
		verifyCube(t, sv, faultsim.Fault{Gate: y.ID, Pin: -1, StuckAt: false}, cube)
	}
}

func TestGenerateCubeAllS27Faults(t *testing.T) {
	sv := scanView(t, s27, "s27")
	gen := NewGenerator(sv)
	faults := faultsim.Collapse(sv.Circuit)
	detected := 0
	for _, f := range faults {
		cube, st := gen.GenerateCube(f)
		switch st {
		case Detected:
			detected++
			verifyCube(t, sv, f, cube)
			if cube.Len() != sv.ScanWidth() {
				t.Fatalf("cube width %d", cube.Len())
			}
		case Aborted:
			t.Fatalf("fault %v aborted on tiny circuit", f)
		}
	}
	if detected < len(faults)*9/10 {
		t.Fatalf("only %d/%d faults detected", detected, len(faults))
	}
}

func TestGenerateCubesLeaveX(t *testing.T) {
	sv := scanView(t, s27, "s27")
	gen := NewGenerator(sv)
	faults := faultsim.Collapse(sv.Circuit)
	totalX, total := 0, 0
	for _, f := range faults {
		if cube, st := gen.GenerateCube(f); st == Detected {
			totalX += cube.XCount()
			total += cube.Len()
		}
	}
	if total == 0 || totalX == 0 {
		t.Fatalf("expected don't-cares in PODEM cubes: %d/%d", totalX, total)
	}
}

func TestGenerateCampaign(t *testing.T) {
	sv := scanView(t, s27, "s27")
	faults := faultsim.Collapse(sv.Circuit)
	set, st, err := Generate(sv, faults, Options{FillSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if st.Faults != len(faults) || st.Detected == 0 || st.Patterns != set.Len() {
		t.Fatalf("stats %+v", st)
	}
	if st.CoveragePercent < 99 {
		t.Fatalf("coverage %.1f%%", st.CoveragePercent)
	}
	// Grading the filled set with the fault simulator reproduces the
	// claimed coverage.
	sim := faultsim.NewSimulator(sv)
	cov, err := sim.Campaign(set.FillConst(bitvec.Zero), faults)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Percent() < 80 { // zero fill is worse than random, but most hold
		t.Fatalf("graded coverage %.1f%%", cov.Percent())
	}
}

func TestGenerateWithCompaction(t *testing.T) {
	sv := scanView(t, s27, "s27")
	faults := faultsim.Collapse(sv.Circuit)
	full, _, err := Generate(sv, faults, Options{FillSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	compact, stc, err := Generate(sv, faults, Options{FillSeed: 5, Compact: true})
	if err != nil {
		t.Fatal(err)
	}
	if compact.Len() > full.Len() {
		t.Fatalf("compaction grew the set: %d > %d", compact.Len(), full.Len())
	}
	if stc.CoveragePercent < 99 {
		t.Fatalf("compacted coverage %.1f%%", stc.CoveragePercent)
	}
}
