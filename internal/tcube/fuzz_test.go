package tcube

import (
	"strings"
	"testing"
)

// FuzzRead checks the 01X parser never panics and accepted sets
// round-trip through Write.
func FuzzRead(f *testing.F) {
	f.Add("01X\nX10\n")
	f.Add("# comment\n\n0X1")
	f.Add("")
	f.Add("0\n01")
	f.Add(strings.Repeat("X", 1000))
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Read("fuzz", strings.NewReader(src))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := s.Write(&sb); err != nil {
			t.Fatalf("write of accepted set failed: %v", err)
		}
		again, err := Read("fuzz2", strings.NewReader(sb.String()))
		if err != nil || !again.Equal(s) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}
