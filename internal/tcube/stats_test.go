package tcube

import (
	"strings"
	"testing"
)

func TestMeasureKnown(t *testing.T) {
	s := mustSet(t, "stats",
		"00XX11",
		"XXXXXX",
		"010101",
	)
	st := Measure(s)
	if st.Patterns != 3 || st.Width != 6 || st.Bits != 18 {
		t.Fatalf("shape %+v", st)
	}
	// Specified bits: pattern 0 has 4 (2 zeros), pattern 2 has 6 (3
	// zeros). ZeroBias = 5/10.
	if st.ZeroBias != 0.5 {
		t.Fatalf("ZeroBias = %f", st.ZeroBias)
	}
	// Specified runs: [00],[11] in p0; [010101] in p2 -> lengths 2,2,6.
	if st.SpecRuns.Count != 3 || st.SpecRuns.Max != 6 {
		t.Fatalf("spec runs %+v", st.SpecRuns)
	}
	if want := (2 + 2 + 6) / 3.0; st.SpecRuns.Mean != want {
		t.Fatalf("spec mean %f, want %f", st.SpecRuns.Mean, want)
	}
	// X runs: [XX] in p0, [XXXXXX] in p1 -> lengths 2,6.
	if st.XRuns.Count != 2 || st.XRuns.Max != 6 || st.XRuns.Mean != 4 {
		t.Fatalf("x runs %+v", st.XRuns)
	}
	// Histogram: lengths 2,2 -> bucket 1; length 6 -> bucket 2.
	if len(st.RunHistogram) != 3 || st.RunHistogram[1] != 2 || st.RunHistogram[2] != 1 {
		t.Fatalf("histogram %v", st.RunHistogram)
	}
	if !strings.Contains(st.String(), "specified runs") {
		t.Fatal("String rendering broken")
	}
}

func TestMeasureEmpty(t *testing.T) {
	st := Measure(NewSet("e", 4))
	if st.SpecRuns.Count != 0 || st.XRuns.Count != 0 || st.ZeroBias != 0 {
		t.Fatalf("empty stats %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMeasureAllSpecified(t *testing.T) {
	s := mustSet(t, "spec", "0101", "1111")
	st := Measure(s)
	if st.XRuns.Count != 0 || st.SpecRuns.Count != 2 {
		t.Fatalf("stats %+v", st)
	}
	if st.XPercent != 0 {
		t.Fatalf("X%% = %f", st.XPercent)
	}
}
