// Package tcube represents precomputed scan test sets: ordered lists of
// equal-length ternary cubes (0/1/X), the T_D of the paper. It provides
// parsing and serialization of the plain "01X text" interchange format,
// volume and don't-care statistics, X-fill strategies, and the vertical
// reshaping used when one decompressor feeds m parallel scan chains.
package tcube

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"strings"

	"repro/internal/bitvec"
)

// Set is an ordered collection of test cubes of identical length. The
// cube length is the scan-load width (for full-scan circuits: number of
// scan cells plus primary inputs applied through scan).
type Set struct {
	Name  string
	cubes []*bitvec.Cube
	width int
}

// NewSet returns an empty set expecting cubes of the given width.
func NewSet(name string, width int) *Set {
	if width < 0 {
		panic("tcube: negative width")
	}
	return &Set{Name: name, width: width}
}

// Width returns the per-cube trit count.
func (s *Set) Width() int { return s.width }

// Len returns the number of cubes (test patterns).
func (s *Set) Len() int { return len(s.cubes) }

// Bits returns |T_D|, the total test-data volume in bits.
func (s *Set) Bits() int { return s.Len() * s.width }

// Cube returns pattern i.
func (s *Set) Cube(i int) *bitvec.Cube { return s.cubes[i] }

// Append adds a cube to the set. It returns an error if the cube width
// does not match the set.
func (s *Set) Append(c *bitvec.Cube) error {
	if c.Len() != s.width {
		return fmt.Errorf("tcube: cube width %d != set width %d", c.Len(), s.width)
	}
	s.cubes = append(s.cubes, c)
	return nil
}

// MustAppend is Append for construction sites where a width mismatch is
// a programming error.
func (s *Set) MustAppend(c *bitvec.Cube) {
	if err := s.Append(c); err != nil {
		panic(err)
	}
}

// Clone returns a deep copy of the set.
func (s *Set) Clone() *Set {
	out := NewSet(s.Name, s.width)
	for _, c := range s.cubes {
		out.cubes = append(out.cubes, c.Clone())
	}
	return out
}

// XCount returns the total number of don't-care positions.
func (s *Set) XCount() int {
	n := 0
	for _, c := range s.cubes {
		n += c.XCount()
	}
	return n
}

// XPercent returns 100 * XCount / Bits, the paper's "X%" column. It
// returns 0 for an empty set.
func (s *Set) XPercent() float64 {
	if s.Bits() == 0 {
		return 0
	}
	return 100 * float64(s.XCount()) / float64(s.Bits())
}

// Flatten concatenates all cubes, in order, into one long cube. This is
// the serial bit order in which a single scan chain consumes T_D. The
// concatenation blits whole words of the packed planes.
func (s *Set) Flatten() *bitvec.Cube {
	b := bitvec.NewCubeBuilder(s.Bits())
	for _, c := range s.cubes {
		b.AppendCube(c)
	}
	return b.Build()
}

// FromFlat rebuilds a Set of the given width from a flattened cube. The
// flat length must be a multiple of width (width 0 requires length 0).
func FromFlat(name string, flat *bitvec.Cube, width int) (*Set, error) {
	if width <= 0 {
		if flat.Len() == 0 {
			return NewSet(name, width), nil
		}
		return nil, fmt.Errorf("tcube: width %d with %d bits", width, flat.Len())
	}
	if flat.Len()%width != 0 {
		return nil, fmt.Errorf("tcube: flat length %d not a multiple of width %d", flat.Len(), width)
	}
	out := NewSet(name, width)
	for off := 0; off < flat.Len(); off += width {
		if err := out.Append(flat.Slice(off, off+width)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Equal reports whether two sets hold identical cubes in order.
func (s *Set) Equal(o *Set) bool {
	if s.width != o.width || s.Len() != o.Len() {
		return false
	}
	for i, c := range s.cubes {
		if !c.Equal(o.cubes[i]) {
			return false
		}
	}
	return true
}

// Covers reports whether o is a legal fill of s: same shape, and every
// specified bit of s is preserved in o.
func (s *Set) Covers(o *Set) bool {
	if s.width != o.width || s.Len() != o.Len() {
		return false
	}
	for i, c := range s.cubes {
		if !c.Covers(o.cubes[i]) {
			return false
		}
	}
	return true
}

// FillRandom returns a copy with every X filled from rng, the paper's
// recommended use of leftover don't-cares.
func (s *Set) FillRandom(rng *rand.Rand) *Set {
	out := NewSet(s.Name, s.width)
	for _, c := range s.cubes {
		out.cubes = append(out.cubes, c.FillRandom(rng))
	}
	return out
}

// FillConst returns a copy with every X replaced by v.
func (s *Set) FillConst(v bitvec.Trit) *Set {
	out := NewSet(s.Name, s.width)
	for _, c := range s.cubes {
		out.cubes = append(out.cubes, c.FillConst(v))
	}
	return out
}

// FillAdjacent returns a copy with minimum-transition (adjacent) fill
// applied to every cube.
func (s *Set) FillAdjacent() *Set {
	out := NewSet(s.Name, s.width)
	for _, c := range s.cubes {
		out.cubes = append(out.cubes, c.FillAdjacent())
	}
	return out
}

// Write serializes the set in the 01X text format: one cube per line,
// '#'-prefixed comment lines allowed, blank lines ignored.
func (s *Set) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# test set %s: %d patterns x %d bits, %.2f%% X\n",
		s.Name, s.Len(), s.width, s.XPercent())
	for _, c := range s.cubes {
		if _, err := bw.WriteString(c.String()); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the 01X text format. All cubes must share one width.
func Read(name string, r io.Reader) (*Set, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var set *Set
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		c, err := bitvec.ParseCube(txt)
		if err != nil {
			return nil, fmt.Errorf("tcube: line %d: %w", line, err)
		}
		if set == nil {
			set = NewSet(name, c.Len())
		}
		if err := set.Append(c); err != nil {
			return nil, fmt.Errorf("tcube: line %d: %w", line, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if set == nil {
		set = NewSet(name, 0)
	}
	return set, nil
}
