package tcube

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitvec"
)

// Stats summarizes the structural properties of a test set that
// fixed-block compression cares about: don't-care density, the burst
// lengths of specified stretches and X gaps, and the value bias of
// specified bits. The synthetic-workload substitution in DESIGN.md §4
// is validated by comparing these numbers against the generator's
// target profile.
type Stats struct {
	Patterns int
	Width    int
	Bits     int
	XPercent float64
	ZeroBias float64 // fraction of specified bits that are 0
	SpecRuns RunStats
	XRuns    RunStats
	// RunHistogram buckets specified-run lengths: index i holds runs of
	// length 2^i..2^(i+1)-1.
	RunHistogram []int
}

// RunStats describes a run-length population.
type RunStats struct {
	Count  int
	Mean   float64
	Max    int
	Median int
}

// Measure computes the statistics.
func Measure(s *Set) Stats {
	st := Stats{Patterns: s.Len(), Width: s.Width(), Bits: s.Bits(), XPercent: s.XPercent()}
	var specLens, xLens []int
	zeros, specified := 0, 0
	for i := 0; i < s.Len(); i++ {
		c := s.Cube(i)
		runLen := 0
		runX := false
		flush := func() {
			if runLen == 0 {
				return
			}
			if runX {
				xLens = append(xLens, runLen)
			} else {
				specLens = append(specLens, runLen)
			}
			runLen = 0
		}
		for j := 0; j < c.Len(); j++ {
			t := c.Get(j)
			isX := t == bitvec.X
			if !isX {
				specified++
				if t == bitvec.Zero {
					zeros++
				}
			}
			if runLen > 0 && isX != runX {
				flush()
			}
			runX = isX
			runLen++
		}
		flush()
	}
	if specified > 0 {
		st.ZeroBias = float64(zeros) / float64(specified)
	}
	st.SpecRuns = runStats(specLens)
	st.XRuns = runStats(xLens)
	st.RunHistogram = histogram(specLens)
	return st
}

func runStats(lens []int) RunStats {
	rs := RunStats{Count: len(lens)}
	if len(lens) == 0 {
		return rs
	}
	sum := 0
	for _, l := range lens {
		sum += l
		if l > rs.Max {
			rs.Max = l
		}
	}
	rs.Mean = float64(sum) / float64(len(lens))
	sorted := append([]int(nil), lens...)
	sort.Ints(sorted)
	rs.Median = sorted[len(sorted)/2]
	return rs
}

func histogram(lens []int) []int {
	var h []int
	for _, l := range lens {
		b := 0
		for 1<<uint(b+1) <= l {
			b++
		}
		for len(h) <= b {
			h = append(h, 0)
		}
		h[b]++
	}
	return h
}

// String renders a multi-line report.
func (st Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d patterns x %d bits = %d bits\n", st.Patterns, st.Width, st.Bits)
	fmt.Fprintf(&sb, "don't-care: %.2f%%, specified 0-bias: %.2f\n", st.XPercent, st.ZeroBias)
	fmt.Fprintf(&sb, "specified runs: n=%d mean=%.1f median=%d max=%d\n",
		st.SpecRuns.Count, st.SpecRuns.Mean, st.SpecRuns.Median, st.SpecRuns.Max)
	fmt.Fprintf(&sb, "X gaps:         n=%d mean=%.1f median=%d max=%d\n",
		st.XRuns.Count, st.XRuns.Mean, st.XRuns.Median, st.XRuns.Max)
	fmt.Fprintf(&sb, "specified-run length histogram (1,2-3,4-7,...):")
	for _, v := range st.RunHistogram {
		fmt.Fprintf(&sb, " %d", v)
	}
	sb.WriteByte('\n')
	return sb.String()
}
