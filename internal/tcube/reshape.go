package tcube

import (
	"fmt"

	"repro/internal/bitvec"
)

// VerticalReshape reorders a scan-load cube for a design whose single
// l-bit scan chain has been rearranged into m chains of length l/m
// (paper §III.B, Fig. 4b). Chain c holds the original cells
// [c·l/m, (c+1)·l/m); at shift step t the decompressor must deliver the
// m-bit slice {chain 0 cell t, ..., chain m-1 cell t}. The returned cube
// is that slice sequence — the "vertical, with respect to chain" order
// in which the 9C encoder sees the data.
func VerticalReshape(c *bitvec.Cube, m int) (*bitvec.Cube, error) {
	l := c.Len()
	if m <= 0 || l%m != 0 {
		return nil, fmt.Errorf("tcube: cannot split %d bits into %d chains", l, m)
	}
	per := l / m
	out := bitvec.NewCube(l)
	for t := 0; t < per; t++ {
		for chain := 0; chain < m; chain++ {
			out.Set(t*m+chain, c.Get(chain*per+t))
		}
	}
	return out, nil
}

// VerticalRestore inverts VerticalReshape.
func VerticalRestore(c *bitvec.Cube, m int) (*bitvec.Cube, error) {
	l := c.Len()
	if m <= 0 || l%m != 0 {
		return nil, fmt.Errorf("tcube: cannot restore %d bits from %d chains", l, m)
	}
	per := l / m
	out := bitvec.NewCube(l)
	for t := 0; t < per; t++ {
		for chain := 0; chain < m; chain++ {
			out.Set(chain*per+t, c.Get(t*m+chain))
		}
	}
	return out, nil
}

// Verticalize applies VerticalReshape to every cube of the set.
func Verticalize(s *Set, m int) (*Set, error) {
	out := NewSet(s.Name, s.width)
	for i := 0; i < s.Len(); i++ {
		v, err := VerticalReshape(s.Cube(i), m)
		if err != nil {
			return nil, fmt.Errorf("tcube: pattern %d: %w", i, err)
		}
		if err := out.Append(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Deverticalize inverts Verticalize.
func Deverticalize(s *Set, m int) (*Set, error) {
	out := NewSet(s.Name, s.width)
	for i := 0; i < s.Len(); i++ {
		v, err := VerticalRestore(s.Cube(i), m)
		if err != nil {
			return nil, fmt.Errorf("tcube: pattern %d: %w", i, err)
		}
		if err := out.Append(v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ChainSlices splits a scan-load cube into its m per-chain cubes, chain
// c receiving original cells [c·l/m, (c+1)·l/m).
func ChainSlices(c *bitvec.Cube, m int) ([]*bitvec.Cube, error) {
	l := c.Len()
	if m <= 0 || l%m != 0 {
		return nil, fmt.Errorf("tcube: cannot split %d bits into %d chains", l, m)
	}
	per := l / m
	out := make([]*bitvec.Cube, m)
	for chain := 0; chain < m; chain++ {
		out[chain] = c.Slice(chain*per, (chain+1)*per)
	}
	return out, nil
}
