package tcube

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
)

func mustSet(t *testing.T, name string, rows ...string) *Set {
	t.Helper()
	s, err := Read(name, strings.NewReader(strings.Join(rows, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetBasics(t *testing.T) {
	s := mustSet(t, "demo", "01XX", "1X0X", "# comment ignored", "", "XXXX")
	if s.Len() != 3 || s.Width() != 4 || s.Bits() != 12 {
		t.Fatalf("Len=%d Width=%d Bits=%d", s.Len(), s.Width(), s.Bits())
	}
	if s.XCount() != 8 {
		t.Fatalf("XCount = %d, want 8", s.XCount())
	}
	if got := s.XPercent(); got < 66.6 || got > 66.7 {
		t.Fatalf("XPercent = %f", got)
	}
}

func TestSetAppendWidthMismatch(t *testing.T) {
	s := NewSet("w", 4)
	if err := s.Append(bitvec.NewCube(5)); err == nil {
		t.Fatal("expected width mismatch error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend should panic")
		}
	}()
	s.MustAppend(bitvec.NewCube(5))
}

func TestReadRejectsRaggedAndBadChars(t *testing.T) {
	if _, err := Read("r", strings.NewReader("0101\n011")); err == nil {
		t.Fatal("expected ragged-width error")
	}
	if _, err := Read("r", strings.NewReader("01a1")); err == nil {
		t.Fatal("expected bad character error")
	}
	s, err := Read("empty", strings.NewReader("# only comments\n\n"))
	if err != nil || s.Len() != 0 {
		t.Fatalf("empty read: %v, len=%d", err, s.Len())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := mustSet(t, "rt", "01XX10", "XXXXXX", "110011")
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := Read("rt", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Fatalf("round trip mismatch:\n%s", sb.String())
	}
}

func TestFlattenFromFlat(t *testing.T) {
	s := mustSet(t, "f", "01X", "X10")
	flat := s.Flatten()
	if flat.String() != "01XX10" {
		t.Fatalf("Flatten = %q", flat.String())
	}
	back, err := FromFlat("f", flat, 3)
	if err != nil || !back.Equal(s) {
		t.Fatalf("FromFlat: %v", err)
	}
	if _, err := FromFlat("f", flat, 4); err == nil {
		t.Fatal("expected non-multiple error")
	}
	if _, err := FromFlat("f", flat, 0); err == nil {
		t.Fatal("expected zero-width error")
	}
}

func TestFills(t *testing.T) {
	s := mustSet(t, "fill", "0XX1", "XXXX")
	rng := rand.New(rand.NewSource(7))
	r := s.FillRandom(rng)
	if r.XCount() != 0 || !s.Covers(r) {
		t.Fatal("FillRandom broken")
	}
	z := s.FillConst(bitvec.Zero)
	if z.Cube(0).String() != "0001" || z.Cube(1).String() != "0000" {
		t.Fatal("FillConst broken")
	}
	a := s.FillAdjacent()
	if a.XCount() != 0 || !s.Covers(a) {
		t.Fatal("FillAdjacent broken")
	}
	if s.XCount() == 0 {
		t.Fatal("fills must not mutate the receiver")
	}
}

func TestVerticalReshapeSmall(t *testing.T) {
	// One 6-bit chain split into m=2 chains of length 3:
	// chain0 = bits 012, chain1 = bits 345. Vertical order: b0 b3 b1 b4 b2 b5.
	c, err := bitvec.ParseCube("01X10X")
	if err != nil {
		t.Fatal(err)
	}
	v, err := VerticalReshape(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.String() != "0110XX" {
		t.Fatalf("vertical = %q, want 0110XX", v.String())
	}
	back, err := VerticalRestore(v, 2)
	if err != nil || !back.Equal(c) {
		t.Fatalf("restore mismatch: %v", err)
	}
}

func TestVerticalErrors(t *testing.T) {
	c := bitvec.NewCube(5)
	if _, err := VerticalReshape(c, 2); err == nil {
		t.Fatal("expected error: 5 bits / 2 chains")
	}
	if _, err := VerticalRestore(c, 0); err == nil {
		t.Fatal("expected error: zero chains")
	}
	s := NewSet("v", 5)
	s.MustAppend(c)
	if _, err := Verticalize(s, 2); err == nil {
		t.Fatal("Verticalize should propagate errors")
	}
	if _, err := Deverticalize(s, 3); err == nil {
		t.Fatal("Deverticalize should propagate errors")
	}
}

func TestChainSlices(t *testing.T) {
	c, _ := bitvec.ParseCube("01X10X")
	sl, err := ChainSlices(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"01", "X1", "0X"}
	for i, s := range sl {
		if s.String() != want[i] {
			t.Fatalf("chain %d = %q, want %q", i, s.String(), want[i])
		}
	}
	if _, err := ChainSlices(c, 4); err == nil {
		t.Fatal("expected split error")
	}
}

func TestPropertyVerticalRoundTrip(t *testing.T) {
	f := func(seed int64, mRaw, perRaw uint8) bool {
		m := int(mRaw%8) + 1
		per := int(perRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		c := bitvec.NewCube(m * per)
		for i := 0; i < c.Len(); i++ {
			c.Set(i, bitvec.Trit(rng.Intn(3)))
		}
		v, err := VerticalReshape(c, m)
		if err != nil {
			return false
		}
		back, err := VerticalRestore(v, m)
		return err == nil && back.Equal(c) && v.XCount() == c.XCount()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFlattenRoundTrip(t *testing.T) {
	f := func(seed int64, wRaw, nRaw uint8) bool {
		w := int(wRaw%20) + 1
		n := int(nRaw % 20)
		rng := rand.New(rand.NewSource(seed))
		s := NewSet("p", w)
		for i := 0; i < n; i++ {
			c := bitvec.NewCube(w)
			for j := 0; j < w; j++ {
				c.Set(j, bitvec.Trit(rng.Intn(3)))
			}
			s.MustAppend(c)
		}
		back, err := FromFlat("p", s.Flatten(), w)
		return err == nil && back.Equal(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
