package synth

import (
	"testing"

	"repro/internal/faultsim"
)

func TestCircuitGenerateStructure(t *testing.T) {
	p := CircuitProfile{Name: "syn1", PIs: 8, POs: 4, FFs: 6, Gates: 60, Seed: 1}
	c, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Inputs) != 8 || len(c.Outputs) != 4 || len(c.DFFs) != 6 {
		t.Fatalf("structure: PIs=%d POs=%d FFs=%d", len(c.Inputs), len(c.Outputs), len(c.DFFs))
	}
	if c.NumLogicGates() != 60 {
		t.Fatalf("gates = %d", c.NumLogicGates())
	}
	sv, err := c.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	if sv.ScanWidth() != 14 {
		t.Fatalf("scan width = %d", sv.ScanWidth())
	}
}

func TestCircuitGenerateDeterministic(t *testing.T) {
	p := CircuitProfile{Name: "syn", PIs: 5, POs: 2, FFs: 3, Gates: 30, Seed: 9}
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Generate()
	if a.NumGates() != b.NumGates() {
		t.Fatal("same seed, different circuits")
	}
	for i := range a.Gates {
		if a.Gates[i].Name != b.Gates[i].Name || a.Gates[i].Type != b.Gates[i].Type {
			t.Fatal("same seed, different gate stream")
		}
	}
}

func TestCircuitGenerateRejectsDegenerate(t *testing.T) {
	for _, p := range []CircuitProfile{
		{PIs: 0, POs: 1, Gates: 4},
		{PIs: 1, POs: 0, Gates: 4},
		{PIs: 1, POs: 1, Gates: 0},
		{PIs: 1, POs: 1, Gates: 4, FFs: -1},
	} {
		if _, err := p.Generate(); err == nil {
			t.Errorf("degenerate profile %+v accepted", p)
		}
	}
}

func TestCircuitProfileForScaling(t *testing.T) {
	cs, err := BenchmarkByName("s5378")
	if err != nil {
		t.Fatal(err)
	}
	p := CircuitProfileFor(cs, 10, 3)
	if p.Gates != cs.Gates/10 {
		t.Fatalf("scaled profile %+v", p)
	}
	if p.PIs != 8 { // 35/10 hits the testability floor
		t.Fatalf("PI floor not applied: %+v", p)
	}
	if p.PIs+p.FFs < p.Gates/5 {
		t.Fatalf("gates-per-input bound not applied: %+v", p)
	}
	tiny := CircuitProfileFor(cs, 1_000_000, 3)
	if tiny.PIs < 8 || tiny.POs < 4 || tiny.Gates < 16 || tiny.FFs < 8 {
		t.Fatalf("floor not applied: %+v", tiny)
	}
	same := CircuitProfileFor(cs, 0, 3)
	if same.Gates != cs.Gates {
		t.Fatalf("factor<1 should clamp to 1: %+v", same)
	}
}

func TestGeneratedCircuitsAreTestable(t *testing.T) {
	// Several seeds: the generated logic must be largely testable —
	// a sanity check that the generator doesn't emit dead logic.
	for seed := int64(0); seed < 3; seed++ {
		p := CircuitProfile{Name: "tst", PIs: 10, POs: 5, FFs: 8, Gates: 80, Seed: seed}
		c, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		sv, err := c.FullScan()
		if err != nil {
			t.Fatal(err)
		}
		faults := faultsim.Collapse(c)
		if len(faults) < c.NumGates() {
			t.Fatalf("suspiciously small fault list: %d", len(faults))
		}
		_ = sv
	}
}
