// Package synth provides the synthetic workload substrate that stands
// in for the proprietary data the paper evaluates on: Mintest-style
// ISCAS'89 test-cube sets and the two large IBM test sets (DESIGN.md
// §4). Generation is fully deterministic from a seed.
//
// The generator models what matters to fixed-block compression codes:
// the fraction of don't-cares, the burstiness of specified bits (test
// cubes specify small clustered groups of scan cells and leave long X
// gaps), and the 0-bias of specified values. Given matched statistics,
// the 9C case distribution — and therefore CR, LX and TAT — tracks the
// published shape.
package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/tcube"
)

// CubeProfile describes a synthetic test set.
type CubeProfile struct {
	Name     string
	Patterns int     // number of test cubes
	Width    int     // scan-load bits per cube
	XDensity float64 // target fraction of don't-care bits, in [0,1)
	// MeanSpecRun is the mean length of a burst of specified bits.
	// The mean X-gap length is derived so the overall X density meets
	// XDensity. Longer runs make large K profitable.
	MeanSpecRun float64
	// ZeroBias is the probability that a specified burst starts at 0.
	ZeroBias float64
	// Corr is the probability that each subsequent bit of a specified
	// burst repeats the previous value; 1.0 gives uniform bursts.
	Corr float64
	Seed int64
}

// Validate checks profile parameters.
func (p CubeProfile) Validate() error {
	switch {
	case p.Patterns < 0 || p.Width < 0:
		return fmt.Errorf("synth: negative geometry %dx%d", p.Patterns, p.Width)
	case p.XDensity < 0 || p.XDensity >= 1:
		return fmt.Errorf("synth: XDensity %v outside [0,1)", p.XDensity)
	case p.MeanSpecRun < 1:
		return fmt.Errorf("synth: MeanSpecRun %v < 1", p.MeanSpecRun)
	case p.ZeroBias < 0 || p.ZeroBias > 1:
		return fmt.Errorf("synth: ZeroBias %v outside [0,1]", p.ZeroBias)
	case p.Corr < 0 || p.Corr > 1:
		return fmt.Errorf("synth: Corr %v outside [0,1]", p.Corr)
	}
	return nil
}

// Generate builds the synthetic test set.
func (p CubeProfile) Generate() (*tcube.Set, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	// Mean X gap so that xGap/(xGap+specRun) == XDensity.
	meanXGap := 0.0
	if p.XDensity > 0 {
		meanXGap = p.MeanSpecRun * p.XDensity / (1 - p.XDensity)
	}
	set := tcube.NewSet(p.Name, p.Width)
	for i := 0; i < p.Patterns; i++ {
		set.MustAppend(p.cube(rng, meanXGap))
	}
	return set, nil
}

// geomLen draws a geometric run length with the given mean (≥ 0).
// A mean of 0 always returns 0.
func geomLen(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Geometric on {1,2,...} with mean m has success prob 1/m.
	n := 1
	for rng.Float64() > 1/mean {
		n++
		if n > 1<<20 {
			break // statistically unreachable; guards degenerate params
		}
	}
	return n
}

func (p CubeProfile) cube(rng *rand.Rand, meanXGap float64) *bitvec.Cube {
	c := bitvec.NewCube(p.Width)
	pos := 0
	// Random phase: start inside an X gap half the time so cube edges
	// are not biased toward specified bursts.
	if meanXGap > 0 && rng.Intn(2) == 0 {
		pos += geomLen(rng, meanXGap/2)
	}
	for pos < p.Width {
		// Specified burst.
		v := bitvec.One
		if rng.Float64() < p.ZeroBias {
			v = bitvec.Zero
		}
		for n := geomLen(rng, p.MeanSpecRun); n > 0 && pos < p.Width; n-- {
			c.Set(pos, v)
			pos++
			if rng.Float64() > p.Corr {
				if v == bitvec.Zero {
					v = bitvec.One
				} else {
					v = bitvec.Zero
				}
			}
		}
		// X gap.
		if meanXGap <= 0 {
			continue
		}
		pos += geomLen(rng, meanXGap)
	}
	return c
}
