package synth

import (
	"fmt"
	"math/rand"

	"repro/internal/netlist"
)

// CircuitProfile describes a synthetic full-scan circuit, the stand-in
// for an ISCAS'89 netlist when running the end-to-end ATPG → compress
// → decompress → fault-grade pipeline (DESIGN.md §4, substitution 2).
type CircuitProfile struct {
	Name  string
	PIs   int // primary inputs
	POs   int // primary outputs
	FFs   int // scan flip-flops
	Gates int // combinational gates
	Seed  int64
}

// CircuitProfileFor scales a published benchmark's structure down by
// factor (≥1) so end-to-end tests stay fast while keeping proportions.
func CircuitProfileFor(cs CircuitStats, factor int, seed int64) CircuitProfile {
	if factor < 1 {
		factor = 1
	}
	atLeast := func(v, min int) int {
		if v < min {
			return min
		}
		return v
	}
	// Inputs get generous floors: random reconvergent logic turns
	// redundancy-heavy (mostly untestable) when too many gates share
	// too few independent inputs, unlike the structured ISCAS
	// originals. Scan cells are also topped up so the scaled circuit
	// keeps at most ~5 gates per independent input.
	p := CircuitProfile{
		Name:  cs.Name,
		PIs:   atLeast(cs.PIs/factor, 8),
		POs:   atLeast(cs.POs/factor, 4),
		FFs:   atLeast(cs.FFs/factor, 8),
		Gates: atLeast(cs.Gates/factor, 16),
		Seed:  seed,
	}
	if minInputs := p.Gates / 5; p.PIs+p.FFs < minInputs {
		p.FFs = minInputs - p.PIs
	}
	return p
}

// Generate builds a random levelizable netlist with the requested
// structure. Every generated circuit is valid, full-scannable, and has
// a bias toward 2-input NAND/NOR logic with occasional wide gates and
// rare XORs, echoing the ISCAS'89 mix.
func (p CircuitProfile) Generate() (*netlist.Circuit, error) {
	if p.PIs < 1 || p.Gates < 1 || p.POs < 1 || p.FFs < 0 {
		return nil, fmt.Errorf("synth: degenerate circuit profile %+v", p)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	b := netlist.NewBuilder(p.Name)

	var sources []string // nets usable as fanins: PIs, DFF outputs, gates
	unused := map[string]bool{}
	var unusedList []string
	addSource := func(name string) {
		sources = append(sources, name)
		unused[name] = true
		unusedList = append(unusedList, name)
	}
	consume := func(name string) {
		delete(unused, name)
	}
	for i := 0; i < p.PIs; i++ {
		name := fmt.Sprintf("I%d", i)
		b.AddInput(name)
		addSource(name)
	}
	for i := 0; i < p.FFs; i++ {
		addSource(fmt.Sprintf("D%d", i)) // defined below
	}

	pickUnused := func() (string, bool) {
		// Draw until an actually-unused net surfaces; compact lazily.
		for len(unusedList) > 0 {
			i := rng.Intn(len(unusedList))
			name := unusedList[i]
			if unused[name] {
				return name, true
			}
			unusedList[i] = unusedList[len(unusedList)-1]
			unusedList = unusedList[:len(unusedList)-1]
		}
		return "", false
	}
	pick := func() string {
		// Prefer nets nothing consumes yet (keeps the whole circuit
		// observable), otherwise bias toward recent nets for depth.
		if rng.Intn(3) != 0 {
			if name, ok := pickUnused(); ok {
				return name
			}
		}
		n := len(sources)
		if n > 3 && rng.Intn(3) != 0 {
			return sources[n-1-rng.Intn(n/3+1)]
		}
		return sources[rng.Intn(n)]
	}

	gateNames := make([]string, 0, p.Gates)
	for i := 0; i < p.Gates; i++ {
		name := fmt.Sprintf("N%d", i)
		t, arity := randomGate(rng)
		fanin := make([]string, 0, arity)
		seen := map[string]bool{}
		for len(fanin) < arity {
			f := pick()
			if seen[f] {
				// Permit duplicates only if the pool is tiny.
				if len(sources) > arity {
					continue
				}
			}
			seen[f] = true
			consume(f)
			fanin = append(fanin, f)
		}
		b.AddGate(name, t, fanin...)
		addSource(name)
		gateNames = append(gateNames, name)
	}

	// Observe the remaining sinks first: DFF inputs and POs tap nets
	// nothing consumes, so no logic cone is left unobservable.
	pickSink := func() string {
		if name, ok := pickUnused(); ok {
			consume(name)
			return name
		}
		return gateNames[rng.Intn(len(gateNames))]
	}
	for i := 0; i < p.FFs; i++ {
		b.AddGate(fmt.Sprintf("D%d", i), netlist.DFF, pickSink())
	}
	for i := 0; i < p.POs; i++ {
		b.AddOutput(pickSink())
	}
	return b.Build()
}

// randomGate draws a gate type and arity. The mix leans on 2-input
// gates and a healthy XOR share: deep random AND/OR logic drifts
// toward constant signal probabilities (making most faults genuinely
// untestable), while XORs keep signal entropy alive the way structured
// datapath logic does.
func randomGate(rng *rand.Rand) (netlist.GateType, int) {
	switch r := rng.Intn(100); {
	case r < 20:
		return netlist.Nand, 2
	case r < 40:
		return netlist.Nor, 2
	case r < 48:
		return netlist.And, 2 + rng.Intn(2)
	case r < 56:
		return netlist.Or, 2 + rng.Intn(2)
	case r < 68:
		return netlist.Not, 1
	case r < 72:
		return netlist.Buf, 1
	case r < 88:
		return netlist.Xor, 2
	default:
		return netlist.Xnor, 2
	}
}
