package synth

import (
	"fmt"
	"sort"

	"repro/internal/tcube"
)

// CircuitStats are the published structural parameters of an ISCAS'89
// benchmark (used by the circuit generator) together with the geometry
// and don't-care density of its Mintest test set (used by the cube
// generator). Sources: the ISCAS'89 benchmark documentation and the
// test-set statistics reported across the FDR/VIHC/dictionary
// compression literature the paper compares against.
type CircuitStats struct {
	Name     string
	PIs      int // primary inputs
	POs      int // primary outputs
	FFs      int // flip-flops (scan cells)
	Gates    int // combinational gates
	Patterns int // Mintest pattern count
	// ScanWidth is the per-pattern scan load: FFs + PIs for the
	// full-scan single-chain configuration used by the paper.
	ScanWidth int
	XPercent  float64 // Mintest don't-care density
}

// Benchmarks lists the six ISCAS'89 circuits of Tables II–VII in the
// paper's order.
var Benchmarks = []CircuitStats{
	{Name: "s5378", PIs: 35, POs: 49, FFs: 179, Gates: 2779, Patterns: 111, ScanWidth: 214, XPercent: 72.6},
	{Name: "s9234", PIs: 36, POs: 39, FFs: 211, Gates: 5597, Patterns: 159, ScanWidth: 247, XPercent: 73.9},
	{Name: "s13207", PIs: 62, POs: 152, FFs: 638, Gates: 7951, Patterns: 236, ScanWidth: 700, XPercent: 93.2},
	{Name: "s15850", PIs: 77, POs: 150, FFs: 534, Gates: 9772, Patterns: 126, ScanWidth: 611, XPercent: 83.6},
	{Name: "s38417", PIs: 28, POs: 106, FFs: 1636, Gates: 22179, Patterns: 99, ScanWidth: 1664, XPercent: 68.1},
	{Name: "s38584", PIs: 38, POs: 304, FFs: 1426, Gates: 19253, Patterns: 136, ScanWidth: 1464, XPercent: 82.2},
}

// IBMCircuits lists the two large industrial circuits of Table VIII.
// The paper reports only gate/flop counts and total volume; the test
// data itself is proprietary, so the profile targets the published
// volume with a very high X density and long uniform bursts (the regime
// in which the paper's K=32..48 optimum appears).
var IBMCircuits = []CircuitStats{
	{Name: "CKT1", Gates: 3_600_000, FFs: 726_000, Patterns: 375, ScanWidth: 16_000, XPercent: 97.0},
	{Name: "CKT2", Gates: 1_200_000, FFs: 320_000, Patterns: 400, ScanWidth: 10_000, XPercent: 96.0},
}

// BenchmarkByName returns the profile for an ISCAS'89 or IBM circuit.
func BenchmarkByName(name string) (CircuitStats, error) {
	for _, b := range Benchmarks {
		if b.Name == name {
			return b, nil
		}
	}
	for _, b := range IBMCircuits {
		if b.Name == name {
			return b, nil
		}
	}
	return CircuitStats{}, fmt.Errorf("synth: unknown benchmark %q", name)
}

// BenchmarkNames returns all profile names, ISCAS'89 first, sorted
// within each group as published.
func BenchmarkNames() []string {
	names := make([]string, 0, len(Benchmarks)+len(IBMCircuits))
	for _, b := range Benchmarks {
		names = append(names, b.Name)
	}
	ibm := make([]string, 0, len(IBMCircuits))
	for _, b := range IBMCircuits {
		ibm = append(ibm, b.Name)
	}
	sort.Strings(ibm)
	return append(names, ibm...)
}

// CubeProfileFor derives the synthetic cube profile for a circuit. The
// burst statistics are chosen per X-density band: sparse Mintest sets
// (s13207-like) have long X gaps and short specified bursts, dense sets
// (s38417-like) have longer specified stretches; industrial sets have
// very long uniform bursts dominated by 0 fill.
func CubeProfileFor(cs CircuitStats, seed int64) CubeProfile {
	d := cs.XPercent / 100
	p := CubeProfile{
		Name:     cs.Name,
		Patterns: cs.Patterns,
		Width:    cs.ScanWidth,
		XDensity: d,
		Seed:     seed,
	}
	switch {
	case d >= 0.95: // industrial
		p.MeanSpecRun = 24
		p.ZeroBias = 0.85
		p.Corr = 0.97
	case d >= 0.90: // very sparse (s13207)
		p.MeanSpecRun = 4
		p.ZeroBias = 0.8
		p.Corr = 0.9
	case d >= 0.80: // sparse (s15850, s38584)
		p.MeanSpecRun = 5
		p.ZeroBias = 0.75
		p.Corr = 0.9
	default: // dense (s5378, s9234, s38417)
		p.MeanSpecRun = 6
		p.ZeroBias = 0.7
		p.Corr = 0.9
	}
	return p
}

// MintestLike generates the synthetic stand-in test set for a named
// benchmark with a fixed per-name seed, so every table in the harness
// sees the same data.
func MintestLike(name string) (*tcube.Set, error) {
	cs, err := BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	var seed int64 = 9 // shared base seed
	for _, r := range name {
		seed = seed*131 + int64(r)
	}
	return CubeProfileFor(cs, seed).Generate()
}
