package synth

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/tcube"
)

func TestProfileValidate(t *testing.T) {
	good := CubeProfile{Name: "ok", Patterns: 3, Width: 10, XDensity: 0.5, MeanSpecRun: 4, ZeroBias: 0.5, Corr: 0.9}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []CubeProfile{
		{Patterns: -1, MeanSpecRun: 2},
		{Width: -1, MeanSpecRun: 2},
		{XDensity: 1.0, MeanSpecRun: 2},
		{XDensity: -0.1, MeanSpecRun: 2},
		{MeanSpecRun: 0.5},
		{MeanSpecRun: 2, ZeroBias: 1.5},
		{MeanSpecRun: 2, Corr: -0.1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
		if _, err := p.Generate(); err == nil {
			t.Errorf("bad profile %d generated", i)
		}
	}
}

func TestGenerateGeometry(t *testing.T) {
	p := CubeProfile{Name: "g", Patterns: 20, Width: 300, XDensity: 0.8, MeanSpecRun: 5, ZeroBias: 0.7, Corr: 0.9, Seed: 42}
	s, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 20 || s.Width() != 300 || s.Name != "g" {
		t.Fatalf("geometry %dx%d name=%q", s.Len(), s.Width(), s.Name)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := CubeProfile{Name: "d", Patterns: 5, Width: 100, XDensity: 0.6, MeanSpecRun: 4, ZeroBias: 0.6, Corr: 0.8, Seed: 7}
	a, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := p.Generate()
	if !a.Equal(b) {
		t.Fatal("same seed produced different sets")
	}
	p.Seed = 8
	c, _ := p.Generate()
	if a.Equal(c) {
		t.Fatal("different seed produced identical sets")
	}
}

func TestGenerateHitsXDensity(t *testing.T) {
	for _, d := range []float64{0, 0.3, 0.7, 0.93, 0.97} {
		p := CubeProfile{Name: "x", Patterns: 50, Width: 1000, XDensity: d, MeanSpecRun: 6, ZeroBias: 0.7, Corr: 0.9, Seed: 11}
		s, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		got := s.XPercent() / 100
		if math.Abs(got-d) > 0.06 {
			t.Errorf("XDensity target %v, got %.3f", d, got)
		}
	}
}

func TestBenchmarkProfiles(t *testing.T) {
	if len(Benchmarks) != 6 || len(IBMCircuits) != 2 {
		t.Fatalf("profile counts: %d/%d", len(Benchmarks), len(IBMCircuits))
	}
	for _, name := range BenchmarkNames() {
		cs, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Name != name {
			t.Fatalf("lookup %q returned %q", name, cs.Name)
		}
	}
	if _, err := BenchmarkByName("s99999"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestMintestLikeMatchesPublishedStats(t *testing.T) {
	for _, cs := range Benchmarks {
		s, err := MintestLike(cs.Name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Len() != cs.Patterns || s.Width() != cs.ScanWidth {
			t.Errorf("%s: geometry %dx%d, want %dx%d", cs.Name, s.Len(), s.Width(), cs.Patterns, cs.ScanWidth)
		}
		if math.Abs(s.XPercent()-cs.XPercent) > 6 {
			t.Errorf("%s: X%%=%.1f, want ~%.1f", cs.Name, s.XPercent(), cs.XPercent)
		}
		// Regenerating must give identical data (fixed per-name seed).
		again, _ := MintestLike(cs.Name)
		if !s.Equal(again) {
			t.Errorf("%s: MintestLike not deterministic", cs.Name)
		}
	}
}

func TestMintestLikeUnknown(t *testing.T) {
	if _, err := MintestLike("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestPropertyGenerateRespectsBounds(t *testing.T) {
	f := func(seed int64, dRaw, wRaw uint8) bool {
		d := float64(dRaw%95) / 100
		w := int(wRaw%200) + 1
		p := CubeProfile{Name: "q", Patterns: 3, Width: w, XDensity: d,
			MeanSpecRun: 5, ZeroBias: 0.7, Corr: 0.9, Seed: seed}
		s, err := p.Generate()
		if err != nil {
			return false
		}
		return s.Len() == 3 && s.Width() == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorStatsMatchProfile(t *testing.T) {
	// The structural statistics the generator promises (DESIGN.md §4)
	// must be measurable in its output: X density near target and mean
	// specified-run length near MeanSpecRun.
	p := CubeProfile{Name: "st", Patterns: 60, Width: 800, XDensity: 0.8,
		MeanSpecRun: 6, ZeroBias: 0.7, Corr: 0.9, Seed: 21}
	s, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	st := tcube.Measure(s)
	if math.Abs(st.XPercent/100-p.XDensity) > 0.05 {
		t.Fatalf("X density %.3f, target %.2f", st.XPercent/100, p.XDensity)
	}
	// Truncation at cube edges biases runs slightly short; allow 25%.
	if st.SpecRuns.Mean < p.MeanSpecRun*0.75 || st.SpecRuns.Mean > p.MeanSpecRun*1.25 {
		t.Fatalf("mean specified run %.2f, target %.1f", st.SpecRuns.Mean, p.MeanSpecRun)
	}
	// Specified 0-bias tracks ZeroBias loosely (Corr flips drift it).
	if st.ZeroBias < 0.55 || st.ZeroBias > 0.85 {
		t.Fatalf("zero bias %.2f, target %.2f", st.ZeroBias, p.ZeroBias)
	}
}
