package ate

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/tcube"
)

func encodeRandom(t testing.TB, seed int64, k, n int) *core.Result {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	flat := bitvec.NewCube(n)
	for i := 0; i < n; i++ {
		flat.Set(i, bitvec.Trit(rng.Intn(3)))
	}
	cdc, err := core.New(k)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cdc.EncodeCube(flat)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestAnalyticTATBoundedByCR(t *testing.T) {
	r := encodeRandom(t, 1, 8, 800)
	prev := -math.MaxFloat64
	for _, p := range []int{1, 2, 4, 8, 16, 64, 1024} {
		tat, err := TAT(r, p)
		if err != nil {
			t.Fatal(err)
		}
		if tat < prev {
			t.Fatalf("TAT not monotone in p: p=%d gives %f < %f", p, tat, prev)
		}
		if tat > r.CR() {
			t.Fatalf("TAT %f exceeds CR %f at p=%d", tat, r.CR(), p)
		}
		prev = tat
	}
	// Large p approaches CR.
	huge, err := TAT(r, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if diff := r.CR() - huge; diff > 0.5 {
		t.Fatalf("TAT at huge p should approach CR, gap %f", diff)
	}
}

func TestTestTimeCompressedFormula(t *testing.T) {
	r := encodeRandom(t, 2, 8, 400)
	want := float64(r.CompressedBits()) + float64(r.Blocks*r.K)/8.0
	got, err := TestTimeCompressed(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("t_comp = %v, want %v", got, want)
	}
}

// TestClockRatioClassified is the regression for the retired panic: an
// out-of-range p is a classified, sentinel-matchable error from every
// entry point — the analytic formulas and the simulated session — and
// never a panic.
func TestClockRatioClassified(t *testing.T) {
	r := encodeRandom(t, 2, 8, 400)
	for _, p := range []int{0, -1, -1 << 30} {
		if _, err := TestTimeCompressed(r, p); !errors.Is(err, ErrClockRatio) {
			t.Fatalf("TestTimeCompressed(p=%d): %v, want ErrClockRatio", p, err)
		}
		if _, err := TAT(r, p); !errors.Is(err, ErrClockRatio) {
			t.Fatalf("TAT(p=%d): %v, want ErrClockRatio", p, err)
		}
		if _, err := (Session{P: p}).RunSingleScan(r); !errors.Is(err, ErrClockRatio) {
			t.Fatalf("RunSingleScan(p=%d): %v, want ErrClockRatio", p, err)
		}
	}
}

func TestSessionMeasuredEqualsAnalytic(t *testing.T) {
	r := encodeRandom(t, 3, 8, 640)
	rep, err := Session{P: 8, FillSeed: 4}.RunSingleScan(r)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.TATAnalytic-rep.TATMeasured) > 1e-9 {
		t.Fatalf("analytic %f != measured %f", rep.TATAnalytic, rep.TATMeasured)
	}
	if rep.ShippedBits != r.CompressedBits() {
		t.Fatalf("shipped %d, want %d", rep.ShippedBits, r.CompressedBits())
	}
	if rep.CRPercent != r.CR() || rep.LXPercent != r.LXPercent() {
		t.Fatal("report metrics disagree with result")
	}
	if rep.DeliveredOut.Len() != r.Blocks*r.K {
		t.Fatalf("delivered %d bits", rep.DeliveredOut.Len())
	}
}

func TestSessionValidation(t *testing.T) {
	r := encodeRandom(t, 5, 8, 80)
	if _, err := (Session{P: 0}).RunSingleScan(r); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestFillStreamRejectsNothing(t *testing.T) {
	c, err := bitvec.ParseCube("01X10X")
	if err != nil {
		t.Fatal(err)
	}
	b, err := FillStream(c, 7)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 6 || b.Get(0) || !b.Get(1) {
		t.Fatalf("filled = %s", b)
	}
}

func TestEmptyResultTAT(t *testing.T) {
	cdc, _ := core.New(8)
	r, err := cdc.EncodeSet(tcube.NewSet("empty", 0))
	if err != nil {
		t.Fatal(err)
	}
	tat, err := TAT(r, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tat != 0 {
		t.Fatal("empty TAT should be 0")
	}
}

// Property: the simulated session always matches the closed form, for
// any K, data and clock ratio.
func TestPropertySessionMatchesClosedForm(t *testing.T) {
	f := func(seed int64, kRaw, nRaw, pRaw uint8) bool {
		k := (int(kRaw%12) + 1) * 2
		n := int(nRaw)%300 + 1
		p := int(pRaw%16) + 1
		r := encodeRandom(t, seed, k, n)
		rep, err := Session{P: p, FillSeed: seed}.RunSingleScan(r)
		if err != nil {
			return false
		}
		return math.Abs(rep.TATAnalytic-rep.TATMeasured) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
