// Package ate models the automatic test equipment side of the paper's
// flow: vector memory holding T_E, a slow tester clock driving the
// single data pin, and the clock-ratio parameter p = f_scan / f_ate.
// It provides both the closed-form test-application-time (TAT) model of
// §III.C and a full simulated session that ships the stream through
// the cycle-accurate decoder model; the two are asserted equal in
// tests.
package ate

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/decoder"
)

// ErrClockRatio reports a scan-to-ATE clock ratio outside the model's
// domain (p must be >= 1: the scan clock is never slower than the ATE
// clock in the paper's deployment). It is a sentinel so callers that
// accept p from a flag or a request can dispatch with errors.Is.
var ErrClockRatio = errors.New("ate: clock ratio out of range")

// TestTimeUncompressed returns the baseline test time in ATE cycles:
// every T_D bit crosses the pin at the ATE rate.
func TestTimeUncompressed(origBits int) float64 { return float64(origBits) }

// TestTimeCompressed returns the analytic compressed test time in ATE
// cycles for clock ratio p:
//
//	t_comp = Σ_i N_i(|C_i| + data_i) + (blocks · K)/p
//
// i.e. every shipped bit costs one ATE cycle and every block costs K
// scan-clock cycles of shifting. p < 1 is ErrClockRatio.
func TestTimeCompressed(r *core.Result, p int) (float64, error) {
	if p < 1 {
		return 0, fmt.Errorf("%w: p=%d, want >= 1", ErrClockRatio, p)
	}
	return float64(core.CompressedSize(r.K, r.Assign, r.Counts)) +
		float64(r.Blocks*r.K)/float64(p), nil
}

// TAT returns the test-application-time reduction percentage
// 100·(t_nocomp − t_comp)/t_nocomp for clock ratio p. As p grows, TAT
// approaches CR from below (the paper's "TAT is bounded by CR").
// p < 1 is ErrClockRatio.
func TAT(r *core.Result, p int) (float64, error) {
	comp, err := TestTimeCompressed(r, p)
	if err != nil {
		return 0, err
	}
	if r.OrigBits == 0 {
		return 0, nil
	}
	base := TestTimeUncompressed(r.OrigBits)
	return 100 * (base - comp) / base, nil
}

// Session is one ATE-to-SoC decompression run.
type Session struct {
	// P is the scan-to-ATE clock ratio (f_scan = P·f_ate), ≥ 1.
	P int
	// FillSeed seeds the random fill of leftover don't-cares before
	// shipping (the paper's recommended use of the leftover X bits).
	FillSeed int64
}

// Report summarizes a simulated session.
type Report struct {
	CRPercent    float64
	LXPercent    float64
	TATAnalytic  float64
	TATMeasured  float64
	ATECycles    int
	ScanCycles   int
	ShippedBits  int
	DeliveredOut *bitvec.Bits // bits entering the scan chain, padded
}

// RunSingleScan fills the leftover don't-cares of the encoded result,
// ships the stream through the Fig. 1 decoder, and reports both the
// analytic and the cycle-measured TAT.
func (s Session) RunSingleScan(r *core.Result) (*Report, error) {
	analytic, err := TAT(r, s.P)
	if err != nil {
		return nil, err
	}
	stream, err := FillStream(r.Stream, s.FillSeed)
	if err != nil {
		return nil, err
	}
	d, err := decoder.NewSingleScan(r.K, r.Assign)
	if err != nil {
		return nil, err
	}
	tr, err := d.Run(stream, r.Blocks*r.K)
	if err != nil {
		return nil, err
	}
	base := TestTimeUncompressed(r.OrigBits)
	rep := &Report{
		CRPercent:    r.CR(),
		LXPercent:    r.LXPercent(),
		TATAnalytic:  analytic,
		ATECycles:    tr.ATECycles,
		ScanCycles:   tr.ScanCycles,
		ShippedBits:  stream.Len(),
		DeliveredOut: tr.Out,
	}
	if base > 0 {
		rep.TATMeasured = 100 * (base - tr.TestTimeATE(s.P)) / base
	}
	return rep, nil
}

// FillStream randomly fills a ternary T_E stream into the fully
// specified bit stream the ATE stores in vector memory.
func FillStream(stream *bitvec.Cube, seed int64) (*bitvec.Bits, error) {
	rng := rand.New(rand.NewSource(seed))
	f := stream.FillRandom(rng)
	out := bitvec.NewBits(f.Len())
	for i := 0; i < f.Len(); i++ {
		switch f.Get(i) {
		case bitvec.One:
			out.Set(i, true)
		case bitvec.Zero:
		default:
			return nil, fmt.Errorf("ate: unfilled X at stream bit %d", i)
		}
	}
	return out, nil
}
