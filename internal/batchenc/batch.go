// Package batchenc is the admission-side micro-batcher of the ninecd
// /encode path: many small encode requests arriving within a short
// window are packed into one shared workspace pass instead of each
// paying its own workspace checkout, codec resolution, and scheduler
// round trip. Per-request framing is preserved — every job still
// produces its own chunked v4 container, byte-identical to what a
// direct encode of the same request would emit — so batching is purely
// an amortization, never a semantic change.
//
// Latency is bounded by the configured window: the first job of a
// batch waits at most Window for peers (a full batch flushes early),
// and under low load the batcher falls through to the direct path — a
// request that observes no concurrent encodes runs immediately on its
// caller's goroutine with zero added latency.
package batchenc

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codecopt"
	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tcube"
)

// Request is one encode job: the parsed 01X set plus the codec
// parameters the ninecd query string carries.
type Request struct {
	Set  *tcube.Set
	K    int
	FD   bool // frequency-directed two-pass assignment
	Name string
	// Profile, when non-nil, overrides K/FD entirely: the job encodes
	// with the tuned assignment, block size, and fill the profile
	// carries (the X-Codec-Profile path).
	Profile *codecopt.Profile
}

// Result is the finished container plus the response-header facts.
type Result struct {
	Container      []byte
	Patterns       int
	CompressedBits int
}

// Config assembles an Encoder.
type Config struct {
	// Window is how long the first job of a batch waits for peers.
	// <= 0 disables batching entirely: every job runs direct.
	Window time.Duration
	// MaxBatch flushes a batch early once this many jobs are pending
	// (default 32).
	MaxBatch int
	// Codec resolves a block size to a default-assignment codec;
	// nil uses core.New per job (ninecd passes its shared codec cache).
	Codec func(k int) (*core.Codec, error)
	// Registry receives the batch telemetry; nil falls back to
	// obs.Active() at construction (nil-safe either way).
	Registry *obs.Registry
}

// Encoder runs encode jobs, batching them when concurrency makes it
// worthwhile. Safe for concurrent use.
type Encoder struct {
	cfg      Config
	inflight atomic.Int64

	mu      sync.Mutex
	pending []*job
	timer   *time.Timer

	direct  *obs.Counter
	batched *obs.Counter
	flushes *obs.Counter
	size    *obs.Histogram
}

type job struct {
	ctx  context.Context
	req  Request
	done chan struct{}
	res  Result
	err  error
}

// New builds an Encoder from cfg.
func New(cfg Config) *Encoder {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 32
	}
	if cfg.Codec == nil {
		cfg.Codec = core.New
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Active()
	}
	return &Encoder{
		cfg:     cfg,
		direct:  reg.Counter("ninecd.batch.direct"),
		batched: reg.Counter("ninecd.batch.batched"),
		flushes: reg.Counter("ninecd.batch.flushes"),
		size:    reg.Histogram("ninecd.batch.size"),
	}
}

// Encode runs one job. With batching disabled, or when no other encode
// is in flight (low load), the job runs immediately on the caller's
// goroutine. Otherwise it joins the forming batch and waits for the
// flush — at most Window, sooner when the batch fills.
func (e *Encoder) Encode(ctx context.Context, req Request) (Result, error) {
	n := e.inflight.Add(1)
	defer e.inflight.Add(-1)
	if e.cfg.Window <= 0 || n < 2 {
		e.direct.Inc()
		ws := core.GetWorkspace()
		defer ws.Release()
		return e.encodeJob(ctx, ws, req)
	}

	j := &job{ctx: ctx, req: req, done: make(chan struct{})}
	e.mu.Lock()
	e.pending = append(e.pending, j)
	switch {
	case len(e.pending) == 1:
		e.timer = time.AfterFunc(e.cfg.Window, e.flush)
	case len(e.pending) >= e.cfg.MaxBatch:
		if e.timer != nil {
			e.timer.Stop()
		}
		go e.flush()
	}
	e.mu.Unlock()
	e.batched.Inc()

	select {
	case <-j.done:
		return j.res, j.err
	case <-ctx.Done():
		// The flusher will see the dead context and skip the job; the
		// caller is gone either way.
		return Result{}, ctx.Err()
	}
}

// flush drains the pending batch and runs every job through one shared
// workspace. Racing flushes (timer vs. full batch) are safe: whoever
// arrives second finds the queue empty and returns.
func (e *Encoder) flush() {
	e.mu.Lock()
	jobs := e.pending
	e.pending = nil
	e.mu.Unlock()
	if len(jobs) == 0 {
		return
	}
	e.flushes.Inc()
	e.size.Observe(int64(len(jobs)))

	ws := core.GetWorkspace()
	defer ws.Release()
	for _, j := range jobs {
		if err := j.ctx.Err(); err != nil {
			j.err = err
			close(j.done)
			continue
		}
		// Each job's container is serialized before the workspace moves
		// on to the next job, because the encode Result aliases the
		// workspace planes.
		j.res, j.err = e.encodeJob(j.ctx, ws, j.req)
		close(j.done)
	}
}

// encodeJob is the per-request kernel shared by the direct and batch
// paths: encode (twice for frequency-directed mode), then frame the
// chunked v4 container. The returned Container is freshly allocated —
// it does not alias ws, so it outlives the workspace's next use.
func (e *Encoder) encodeJob(ctx context.Context, ws *core.Workspace, req Request) (Result, error) {
	if req.Profile != nil {
		return e.encodeProfiled(ctx, ws, req)
	}
	cdc, err := e.cfg.Codec(req.K)
	if err != nil {
		return Result{}, err
	}
	res, err := cdc.EncodeSetWSCtx(ctx, ws, req.Set)
	if err != nil {
		return Result{}, err
	}
	if req.FD {
		// Frequency-directed mode needs the first-pass counts, so it is
		// inherently two-pass.
		cdc, err = core.NewWithAssignment(req.K, core.FrequencyDirected(res.Counts))
		if err != nil {
			return Result{}, err
		}
		if res, err = cdc.EncodeSetWSCtx(ctx, ws, req.Set); err != nil {
			return Result{}, err
		}
	}
	res.Name = req.Name
	var buf bytes.Buffer
	if err := container.WriteVersion(&buf, res, container.Magic4); err != nil {
		return Result{}, err
	}
	return Result{
		Container:      buf.Bytes(),
		Patterns:       res.Patterns,
		CompressedBits: res.CompressedBits(),
	}, nil
}

// encodeProfiled is the tuned-codec leg of encodeJob: the profile's
// fill is applied first, then the set encodes under the profile's
// block size and canonical assignment. The container serializes the
// assignment's codewords, so decoding the result needs no profile.
func (e *Encoder) encodeProfiled(ctx context.Context, ws *core.Workspace, req Request) (Result, error) {
	cdc, err := req.Profile.Codec()
	if err != nil {
		return Result{}, err
	}
	set, err := req.Profile.Fill.Apply(req.Set)
	if err != nil {
		return Result{}, err
	}
	res, err := cdc.EncodeSetWSCtx(ctx, ws, set)
	if err != nil {
		return Result{}, err
	}
	res.Name = req.Name
	var buf bytes.Buffer
	if err := container.WriteVersion(&buf, res, container.Magic4); err != nil {
		return Result{}, err
	}
	return Result{
		Container:      buf.Bytes(),
		Patterns:       res.Patterns,
		CompressedBits: res.CompressedBits(),
	}, nil
}
