package batchenc

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/container"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/tcube"
)

func sampleSet(t *testing.T, patterns, width int, seed int64) *tcube.Set {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < patterns; i++ {
		for j := 0; j < width; j++ {
			b.WriteByte("01X"[rng.Intn(3)])
		}
		b.WriteByte('\n')
	}
	set, err := tcube.Read(fmt.Sprintf("set-%d", seed), strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return set
}

// reference encodes a request directly — no batcher, no workspace
// reuse — as the byte-identity oracle.
func reference(t *testing.T, req Request) Result {
	t.Helper()
	cdc, err := core.New(req.K)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cdc.EncodeSet(req.Set)
	if err != nil {
		t.Fatal(err)
	}
	if req.FD {
		cdc, err = core.NewWithAssignment(req.K, core.FrequencyDirected(res.Counts))
		if err != nil {
			t.Fatal(err)
		}
		if res, err = cdc.EncodeSet(req.Set); err != nil {
			t.Fatal(err)
		}
	}
	res.Name = req.Name
	var buf bytes.Buffer
	if err := container.WriteVersion(&buf, res, container.Magic4); err != nil {
		t.Fatal(err)
	}
	return Result{Container: buf.Bytes(), Patterns: res.Patterns, CompressedBits: res.CompressedBits()}
}

func TestDirectPathWhenAlone(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Window: 50 * time.Millisecond, Registry: reg})
	req := Request{Set: sampleSet(t, 8, 32, 1), K: 8, Name: "solo"}
	got, err := e.Encode(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	want := reference(t, req)
	if !bytes.Equal(got.Container, want.Container) {
		t.Fatal("direct-path container differs from reference")
	}
	snap := reg.Snapshot()
	if snap.Counters["ninecd.batch.direct"] != 1 || snap.Counters["ninecd.batch.batched"] != 0 {
		t.Fatalf("direct=%d batched=%d, want 1/0",
			snap.Counters["ninecd.batch.direct"], snap.Counters["ninecd.batch.batched"])
	}
}

func TestWindowZeroDisablesBatching(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Window: 0, Registry: reg})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{Set: sampleSet(t, 4, 16, int64(i)), K: 8, Name: fmt.Sprintf("j%d", i)}
			if _, err := e.Encode(context.Background(), req); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if got := reg.Snapshot().Counters["ninecd.batch.batched"]; got != 0 {
		t.Fatalf("window 0 still batched %d jobs", got)
	}
}

// TestBatchedJobsByteIdentical runs a concurrent burst through a live
// window and requires every job's container to match its individual
// reference encode exactly — per-request framing survives batching.
func TestBatchedJobsByteIdentical(t *testing.T) {
	reg := obs.NewRegistry()
	e := New(Config{Window: 20 * time.Millisecond, Registry: reg})
	const n = 12
	reqs := make([]Request, n)
	for i := range reqs {
		fd := i%3 == 0
		reqs[i] = Request{Set: sampleSet(t, 6, 24, int64(100+i)), K: 8, FD: fd, Name: fmt.Sprintf("burst-%d", i)}
	}
	got := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = e.Encode(context.Background(), reqs[i])
		}(i)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("job %d: %v", i, errs[i])
		}
		want := reference(t, reqs[i])
		if !bytes.Equal(got[i].Container, want.Container) {
			t.Fatalf("job %d container differs from reference", i)
		}
		if got[i].Patterns != want.Patterns || got[i].CompressedBits != want.CompressedBits {
			t.Fatalf("job %d metadata %d/%d, want %d/%d",
				i, got[i].Patterns, got[i].CompressedBits, want.Patterns, want.CompressedBits)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["ninecd.batch.direct"]+snap.Counters["ninecd.batch.batched"] != n {
		t.Fatalf("direct+batched = %d, want %d",
			snap.Counters["ninecd.batch.direct"]+snap.Counters["ninecd.batch.batched"], n)
	}
}

// TestFullBatchFlushesEarly holds one direct encode hostage so later
// arrivals must batch, then proves MaxBatch flushes without waiting
// out a deliberately huge window.
func TestFullBatchFlushesEarly(t *testing.T) {
	reg := obs.NewRegistry()
	gate := make(chan struct{})
	var first atomic.Bool
	codec := func(k int) (*core.Codec, error) {
		if first.CompareAndSwap(false, true) {
			<-gate // the direct leader blocks here, keeping inflight > 1
		}
		return core.New(k)
	}
	e := New(Config{Window: 10 * time.Second, MaxBatch: 4, Codec: codec, Registry: reg})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Encode(context.Background(), Request{Set: sampleSet(t, 4, 16, 1), K: 8, Name: "hostage"})
	}()
	// Wait for the hostage to occupy the direct path.
	deadline := time.Now().Add(5 * time.Second)
	for !first.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	var batchWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		batchWG.Add(1)
		go func(i int) {
			defer batchWG.Done()
			if _, err := e.Encode(context.Background(), Request{Set: sampleSet(t, 4, 16, int64(i+2)), K: 8, Name: fmt.Sprintf("b%d", i)}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	batchWG.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("full batch took %v — it waited out the window instead of flushing early", elapsed)
	}
	close(gate)
	wg.Wait()
	snap := reg.Snapshot()
	if snap.Counters["ninecd.batch.flushes"] < 1 {
		t.Fatal("no flush recorded")
	}
	if snap.Counters["ninecd.batch.batched"] != 4 {
		t.Fatalf("batched = %d, want 4", snap.Counters["ninecd.batch.batched"])
	}
}

// TestCancelledJobSkipped: a job whose context dies before the flush
// neither blocks the batch nor produces a result.
func TestCancelledJobSkipped(t *testing.T) {
	gate := make(chan struct{})
	var first atomic.Bool
	codec := func(k int) (*core.Codec, error) {
		if first.CompareAndSwap(false, true) {
			<-gate
		}
		return core.New(k)
	}
	e := New(Config{Window: 50 * time.Millisecond, Codec: codec})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Encode(context.Background(), Request{Set: sampleSet(t, 4, 16, 1), K: 8, Name: "hostage"})
	}()
	deadline := time.Now().Add(5 * time.Second)
	for !first.Load() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.Encode(ctx, Request{Set: sampleSet(t, 4, 16, 2), K: 8, Name: "dead"})
	if err != context.Canceled {
		t.Fatalf("cancelled job returned %v, want context.Canceled", err)
	}
	close(gate)
	wg.Wait()
}

func TestBadBlockSizeSurfacesError(t *testing.T) {
	e := New(Config{})
	_, err := e.Encode(context.Background(), Request{Set: sampleSet(t, 4, 16, 1), K: 3, Name: "bad"})
	if err == nil {
		t.Fatal("odd block size encoded without error")
	}
}

func BenchmarkEncodeDirect(b *testing.B) {
	e := New(Config{})
	set, err := tcube.Read("bench", strings.NewReader(strings.Repeat("0101XX10X1010101\n", 16)))
	if err != nil {
		b.Fatal(err)
	}
	req := Request{Set: set, K: 8, Name: "bench"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Encode(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
