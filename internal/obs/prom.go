package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text-format exposition (text/plain; version=0.0.4) over
// the registry. The repo's dot-separated lowercase metric names map
// onto Prometheus names by replacing every '.' with '_' (PromName);
// the metric-name contract test keeps that mapping collision-free
// across the whole registry. Counters gain the conventional _total
// suffix; log2 histograms export exact integer upper bounds (bucket i
// holds v < 2^i, so le = 2^i - 1 is exact for integer observations);
// fixed-boundary histograms export their bounds as-is.

// PromContentType is the Content-Type of the exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName maps a dot-separated metric name onto its Prometheus
// name: letters, digits, and underscores pass through, every other
// byte becomes '_', and a leading digit gains a '_' prefix.
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP line per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promState is the consistent copy of the registry taken under its
// mutex, written out lock-free.
type promState struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	fixed    map[string]*FixedHistogram
	help     map[string]string
}

func (r *Registry) promState() promState {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := promState{
		counters: make(map[string]*Counter, len(r.counters)),
		gauges:   make(map[string]*Gauge, len(r.gauges)),
		hists:    make(map[string]*Histogram, len(r.hists)),
		fixed:    make(map[string]*FixedHistogram, len(r.fixed)),
		help:     make(map[string]string, len(r.help)),
	}
	for n, m := range r.counters {
		st.counters[n] = m
	}
	for n, m := range r.gauges {
		st.gauges[n] = m
	}
	for n, m := range r.hists {
		st.hists[n] = m
	}
	for n, m := range r.fixed {
		st.fixed[n] = m
	}
	for n, h := range r.help {
		st.help[n] = h
	}
	return st
}

// helpFor returns the HELP text for a metric: the Describe()d string
// when set, otherwise the dotted source name itself — which documents
// the Prometheus↔registry name mapping in the exposition.
func (st promState) helpFor(name, kind string) string {
	if h, ok := st.help[name]; ok {
		return escapeHelp(h)
	}
	return escapeHelp(name + " (" + kind + ")")
}

// WritePrometheus writes every metric in the registry in the
// Prometheus text exposition format, families sorted by name for a
// stable scrape. Nil-safe: a nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	st := r.promState()
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(st.counters)+len(st.gauges)+len(st.hists)+len(st.fixed))
	for n := range st.counters {
		names = append(names, n)
	}
	for n := range st.gauges {
		names = append(names, n)
	}
	for n := range st.hists {
		names = append(names, n)
	}
	for n := range st.fixed {
		names = append(names, n)
	}
	sort.Strings(names)

	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if c, ok := st.counters[name]; ok {
			fam := PromName(name) + "_total"
			if seen[fam] {
				continue
			}
			seen[fam] = true
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
				fam, st.helpFor(name, "counter"), fam, fam, c.Value())
		}
		if g, ok := st.gauges[name]; ok {
			fam := PromName(name)
			if seen[fam] {
				continue
			}
			seen[fam] = true
			fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
				fam, st.helpFor(name, "gauge"), fam, fam, g.Value())
		}
		if h, ok := st.hists[name]; ok {
			writeLog2Hist(bw, st, name, h, seen)
		}
		if h, ok := st.fixed[name]; ok {
			writeFixedHist(bw, st, name, h, seen)
		}
	}
	return bw.Flush()
}

// writeLog2Hist exports one log2 histogram as cumulative _bucket,
// _sum, and _count series. Bucket i of the source holds integer values
// in [2^(i-1), 2^i) (bucket 0: v <= 0), so le = 2^i - 1 is an exact
// inclusive upper bound; only populated prefixes are emitted, then
// +Inf.
func writeLog2Hist(bw *bufio.Writer, st promState, name string, h *Histogram, seen map[string]bool) {
	fam := PromName(name)
	if seen[fam] {
		return
	}
	seen[fam] = true
	fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n",
		fam, st.helpFor(name, "log2 histogram"), fam)
	// One pass over the buckets; the +Inf bucket and _count derive from
	// the same reads, so the cumulative series is consistent even while
	// writers are racing the scrape.
	maxPow, total := 0, int64(0)
	var counts [histBuckets]int64
	for i := 0; i < histBuckets; i++ {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] != 0 {
			maxPow = i
		}
	}
	cum := int64(0)
	for i := 0; i <= maxPow; i++ {
		cum += counts[i]
		var le string
		if i == 0 {
			le = "0"
		} else if i < 64 {
			le = strconv.FormatUint(1<<uint(i)-1, 10)
		} else {
			le = strconv.FormatUint(^uint64(0), 10)
		}
		fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", fam, le, cum)
	}
	fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", fam, total)
	fmt.Fprintf(bw, "%s_sum %d\n%s_count %d\n", fam, h.Sum(), fam, total)
}

// writeFixedHist exports one fixed-boundary histogram.
func writeFixedHist(bw *bufio.Writer, st promState, name string, h *FixedHistogram, seen map[string]bool) {
	fam := PromName(name)
	if seen[fam] {
		return
	}
	seen[fam] = true
	fmt.Fprintf(bw, "# HELP %s %s\n# TYPE %s histogram\n",
		fam, st.helpFor(name, "histogram"), fam)
	s := h.snapshot()
	cum, total := int64(0), int64(0)
	for _, c := range s.Counts {
		total += c
	}
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n",
			fam, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", fam, total)
	fmt.Fprintf(bw, "%s_sum %s\n%s_count %d\n",
		fam, strconv.FormatFloat(s.Sum, 'g', -1, 64), fam, total)
}
