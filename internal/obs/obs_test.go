package obs

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Inc()
	if got := r.Counter("a").Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(-2)
	if got := r.Gauge("g").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 1024, -5} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("hist count = %d, want 6", h.Count())
	}
	if h.Sum() != 0+1+2+3+1024-5 {
		t.Fatalf("hist sum = %d", h.Sum())
	}
	snap := r.Snapshot()
	hs := snap.Histograms["h"]
	// 0 and -5 in bucket 0; 1 in bucket 1; 2,3 in bucket 2; 1024 in bucket 11.
	want := map[int]int64{0: 2, 1: 1, 2: 2, 11: 1}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", hs.Buckets)
	}
	for _, b := range hs.Buckets {
		if want[b.Pow] != b.Count {
			t.Fatalf("bucket pow %d = %d, want %d", b.Pow, b.Count, want[b.Pow])
		}
	}
}

// TestNilSafety drives the full API through nil receivers; every call
// must be a silent no-op — this is the disabled-path contract.
func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(1)
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Gauge("x").Add(1)
	r.Histogram("x").Observe(1)
	r.SetSink(NewJSONSink(os.Stderr))
	r.Emit("t", "n", nil)
	if r.Counter("x").Value() != 0 || r.Gauge("x").Value() != 0 || r.Histogram("x").Count() != 0 {
		t.Fatal("nil metric returned nonzero value")
	}
	sp := r.Span("s")
	if sp != nil {
		t.Fatal("nil registry produced a non-nil span")
	}
	sp.Set("k", 1).Set("k2", 2)
	if sp.Child("c") != nil {
		t.Fatal("nil span produced a non-nil child")
	}
	if sp.Elapsed() != 0 {
		t.Fatal("nil span has elapsed time")
	}
	sp.End()
	snap := r.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot: %+v", snap)
	}
}

func TestSpansNestAndEmit(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var events []Event
	r.SetSink(FuncSink(func(e Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, e)
	}))
	root := r.Span("outer").Set("k", 16)
	child := root.Child("inner")
	time.Sleep(time.Millisecond)
	child.End()
	root.End()

	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].Name != "inner" || events[1].Name != "outer" {
		t.Fatalf("event order: %q, %q", events[0].Name, events[1].Name)
	}
	if events[0].ParentID != events[1].SpanID {
		t.Fatalf("child parent %d != root span %d", events[0].ParentID, events[1].SpanID)
	}
	if events[0].DurNs < int64(time.Millisecond) {
		t.Fatalf("child duration %d < 1ms", events[0].DurNs)
	}
	if events[1].Fields["k"] != 16 {
		t.Fatalf("root fields = %v", events[1].Fields)
	}
	if r.Histogram("span.inner").Count() != 1 || r.Histogram("span.outer").Count() != 1 {
		t.Fatal("span durations not recorded in histograms")
	}
}

func TestJSONSinkEmitsNDJSON(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONSink(&buf)
	s.Emit(Event{Type: "span", Name: "a", TimeUnixNano: 1})
	s.Emit(Event{Type: "progress", Name: "b", TimeUnixNano: 2, Fields: map[string]any{"n": 3}})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	for _, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
	}
}

func TestEnableDisable(t *testing.T) {
	if Active() != nil {
		t.Fatal("telemetry active at test start")
	}
	r := NewRegistry()
	Enable(r)
	if Active() != r {
		t.Fatal("Active did not return the enabled registry")
	}
	Active().Counter("seen").Inc()
	Disable()
	if Active() != nil {
		t.Fatal("Active non-nil after Disable")
	}
	// The disabled path must not record anything.
	Active().Counter("seen").Inc()
	if r.Counter("seen").Value() != 1 {
		t.Fatalf("counter = %d after disable, want 1", r.Counter("seen").Value())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	r.SetSink(NewJSONSink(discard{}))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(int64(i))
				sp := r.Span("work")
				sp.Child("sub").End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.Histogram("span.work").Count(); got != 8*500 {
		t.Fatalf("span histogram = %d, want %d", got, 8*500)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestCLIConfigStartDisabled(t *testing.T) {
	stop, err := CLIConfig{}.Start()
	if err != nil {
		t.Fatal(err)
	}
	if Active() != nil {
		t.Fatal("empty config enabled telemetry")
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestCLIConfigStartFull(t *testing.T) {
	dir := t.TempDir()
	metrics := filepath.Join(dir, "metrics.json")
	trace := filepath.Join(dir, "trace.ndjson")
	stop, err := CLIConfig{Metrics: metrics, Trace: trace, PprofAddr: "127.0.0.1:0"}.Start()
	if err != nil {
		t.Fatal(err)
	}
	reg := Active()
	if reg == nil {
		t.Fatal("telemetry not enabled")
	}
	reg.Counter("demo").Add(42)
	sp := reg.Span("demo.stage")
	sp.End()
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	if Active() != nil {
		t.Fatal("telemetry still active after stop")
	}

	raw, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("metrics file: %v\n%s", err, raw)
	}
	if snap.Counters["demo"] != 42 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	traw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal([]byte(strings.TrimSpace(string(traw))), &ev); err != nil {
		t.Fatalf("trace file: %v\n%s", err, traw)
	}
	if ev.Name != "demo.stage" || ev.Type != "span" {
		t.Fatalf("trace event = %+v", ev)
	}
}

func TestCLIConfigPprofServes(t *testing.T) {
	// Grab a free port first so the test can dial it back.
	stop, err := CLIConfig{PprofAddr: "127.0.0.1:0"}.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	// The listener address isn't surfaced; this test only asserts
	// Start succeeds with pprof alone and the default mux has the
	// profile routes registered.
	req, _ := http.NewRequest("GET", "/debug/pprof/", nil)
	rec := httptest.NewRecorder()
	http.DefaultServeMux.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof index status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "profile") {
		t.Fatalf("pprof index body: %q", rec.Body.String())
	}
}
