// Package obs is the repository's zero-dependency telemetry layer: an
// atomic metrics registry (counters, gauges, log2-bucket histograms),
// span-based stage timing, and a structured JSON event sink.
//
// The package is built around one invariant: when telemetry is
// disabled the instrumented hot paths pay nothing beyond a single
// atomic pointer load. Active() returns nil when no registry is
// enabled, and every method in the package — Registry, Counter, Gauge,
// Histogram, Span — is a safe no-op on a nil receiver, so call sites
// never branch:
//
//	sp := obs.Active().Span("core.encode_set")
//	...
//	sp.Set("blocks", n).End()
//
// Registries are goroutine-safe; metrics update with atomics and the
// name → metric maps are guarded by a mutex taken only on first
// lookup per call site invocation (not per metric update).
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Registry owns a named set of metrics, an optional structured-event
// sink, and the span ID sequence.
type Registry struct {
	start  time.Time
	spanID atomic.Int64
	sink   atomic.Pointer[sinkBox]

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	fixed    map[string]*FixedHistogram
	help     map[string]string
}

// sinkBox wraps a Sink so the atomic pointer has a concrete type.
type sinkBox struct{ s Sink }

// NewRegistry returns an empty registry with no sink attached.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		fixed:    make(map[string]*FixedHistogram),
		help:     make(map[string]string),
	}
}

// SetSink attaches (or, with nil, detaches) the structured-event sink.
func (r *Registry) SetSink(s Sink) {
	if r == nil {
		return
	}
	if s == nil {
		r.sink.Store(nil)
		return
	}
	r.sink.Store(&sinkBox{s: s})
}

// Counter returns the named counter, creating it on first use.
// Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// FixedHistogram returns the named fixed-boundary histogram, creating
// it with the given bucket upper bounds on first use (later calls
// return the existing histogram regardless of bounds). Nil-safe.
func (r *Registry) FixedHistogram(name string, bounds []float64) *FixedHistogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.fixed[name]
	if !ok {
		h = newFixedHistogram(bounds)
		r.fixed[name] = h
	}
	return h
}

// Describe attaches a help string to the named metric, emitted as the
// Prometheus # HELP line. Nil-safe.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Emit sends one structured event to the sink, stamped with the
// current time. It is a no-op on a nil registry or when no sink is
// attached.
func (r *Registry) Emit(typ, name string, fields map[string]any) {
	if r == nil {
		return
	}
	r.emit(Event{Type: typ, Name: name, Fields: fields})
}

func (r *Registry) emit(e Event) {
	box := r.sink.Load()
	if box == nil {
		return
	}
	if e.TimeUnixNano == 0 {
		e.TimeUnixNano = time.Now().UnixNano()
	}
	box.s.Emit(e)
}

// active is the process-wide registry; nil means telemetry is off.
var active atomic.Pointer[Registry]

// Enable installs r as the process-wide active registry. Enable(nil)
// is equivalent to Disable.
func Enable(r *Registry) { active.Store(r) }

// Disable turns telemetry off; subsequent Active calls return nil and
// all instrumentation reverts to no-ops.
func Disable() { active.Store(nil) }

// Active returns the enabled registry, or nil when telemetry is off.
// The call is one atomic load — cheap enough for any hot path.
func Active() *Registry { return active.Load() }
