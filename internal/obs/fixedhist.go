package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are the request-latency bucket upper bounds in
// seconds, spanning 500µs to 10s — tight enough that p50/p95/p99
// recovered by interpolation carry bounded error across the ninecd
// serving range.
var DefaultLatencyBounds = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// FixedHistogram is a histogram over explicit, immutable bucket upper
// bounds (Prometheus-style), with atomic counters so Observe never
// locks or allocates. Unlike the log2 Histogram, its boundaries are
// chosen per metric — request latencies use second-scale bounds so
// quantiles interpolate with bounded error.
type FixedHistogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf follows
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	buckets []atomic.Int64
}

// newFixedHistogram builds a histogram over the given upper bounds
// (sorted, deduplicated, non-finite dropped). With no usable bounds it
// falls back to DefaultLatencyBounds.
func newFixedHistogram(bounds []float64) *FixedHistogram {
	clean := make([]float64, 0, len(bounds))
	for _, b := range bounds {
		if !math.IsInf(b, 0) && !math.IsNaN(b) {
			clean = append(clean, b)
		}
	}
	sort.Float64s(clean)
	uniq := clean[:0]
	for i, b := range clean {
		if i == 0 || b != clean[i-1] {
			uniq = append(uniq, b)
		}
	}
	if len(uniq) == 0 {
		uniq = append([]float64(nil), DefaultLatencyBounds...)
	}
	return &FixedHistogram{
		bounds:  uniq,
		buckets: make([]atomic.Int64, len(uniq)+1),
	}
}

// Observe records one value. Negative and NaN values clamp into the
// first bucket (they can never index outside the bucket array), so a
// hostile or buggy duration cannot corrupt the histogram. Nil-safe.
func (h *FixedHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	if math.IsNaN(v) || v < 0 {
		v = 0
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: le is inclusive
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *FixedHistogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the number of observations (0 on nil).
func (h *FixedHistogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *FixedHistogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// FixedHistSnapshot is a point-in-time copy of a fixed-boundary
// histogram: per-bucket (non-cumulative) counts aligned with Bounds,
// plus one overflow bucket at the end for values past the last bound.
type FixedHistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// snapshot copies the histogram's current state.
func (h *FixedHistogram) snapshot() FixedHistSnapshot {
	s := FixedHistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
