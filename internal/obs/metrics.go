package obs

import (
	"encoding/json"
	"io"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores n. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i, with bucket 0 for
// v <= 0. 64-bit values need 65 buckets.
const histBuckets = 65

// Histogram is a fixed-shape log2 histogram: no configuration, no
// allocation on observe, mergeable by addition. The log2 shape trades
// resolution for a total absence of tuning — good enough to separate
// "microseconds" from "milliseconds" in stage timings.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values clamp to bucket 0 — the
// index never derives from an untrusted v's bit pattern, so a hostile
// or buggy duration (math.MinInt64 included) cannot index outside the
// bucket array. No-op on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	if v > 0 {
		// bits.Len64 of a positive int64 is at most 63, safely inside
		// the 65-bucket array.
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// HistBucket is one populated log2 bucket: Pow is the exponent (values
// in [2^(Pow-1), 2^Pow)), Count the observations that landed in it.
type HistBucket struct {
	Pow   int   `json:"pow"`
	Count int64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram, carrying only
// the populated buckets.
type HistSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry, the
// shape serialized by the CLI -metrics flag.
type Snapshot struct {
	TimeUnixNano    int64                        `json:"t"`
	UptimeNs        int64                        `json:"uptime_ns"`
	Counters        map[string]int64             `json:"counters,omitempty"`
	Gauges          map[string]int64             `json:"gauges,omitempty"`
	Histograms      map[string]HistSnapshot      `json:"histograms,omitempty"`
	FixedHistograms map[string]FixedHistSnapshot `json:"fixed_histograms,omitempty"`
}

// Snapshot copies the registry's current metric values. Nil-safe: a
// nil registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	now := time.Now()
	s := &Snapshot{TimeUnixNano: now.UnixNano()}
	if r == nil {
		return s
	}
	s.UptimeNs = now.Sub(r.start).Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistSnapshot{Count: h.Count(), Sum: h.Sum()}
			for i := range h.buckets {
				if n := h.buckets[i].Load(); n != 0 {
					hs.Buckets = append(hs.Buckets, HistBucket{Pow: i, Count: n})
				}
			}
			sort.Slice(hs.Buckets, func(a, b int) bool { return hs.Buckets[a].Pow < hs.Buckets[b].Pow })
			s.Histograms[name] = hs
		}
	}
	if len(r.fixed) > 0 {
		s.FixedHistograms = make(map[string]FixedHistSnapshot, len(r.fixed))
		for name, h := range r.fixed {
			s.FixedHistograms[name] = h.snapshot()
		}
	}
	return s
}

// WriteJSON serializes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
