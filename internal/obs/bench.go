package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BenchSchema identifies the BENCH_<stamp>.json snapshot format; bump
// it on any incompatible change so trajectory tooling can dispatch.
const BenchSchema = "ninec-bench/v1"

// BenchStampLayout is the time layout of the snapshot stamp (UTC),
// chosen so lexicographic filename order is chronological order.
const BenchStampLayout = "20060102T150405Z"

// BenchResult is one parsed `go test -bench` line.
type BenchResult struct {
	// Name is the benchmark path without the GOMAXPROCS suffix,
	// e.g. "BenchmarkEncodeSet/K=16".
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values keyed by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchSnapshot is one point on the perf trajectory: the environment
// plus every benchmark result of a run. `make bench-json` persists one
// as BENCH_<stamp>.json in the repository root.
type BenchSnapshot struct {
	Schema     string        `json:"schema"`
	Stamp      string        `json:"stamp"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	CPU        string        `json:"cpu,omitempty"`
	GOMAXPROCS int           `json:"gomaxprocs,omitempty"`
	Results    []BenchResult `json:"results"`
}

// ParseBenchOutput parses the text output of `go test -bench`. It
// extracts benchmark lines and the goos/goarch/cpu banner and ignores
// everything else (PASS/ok trailers, sub-test noise). The returned
// snapshot still needs Schema/Stamp/GoVersion filled by the caller.
func ParseBenchOutput(r io.Reader) (*BenchSnapshot, error) {
	snap := &BenchSnapshot{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			res, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			snap.Results = append(snap.Results, res)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// parseBenchLine parses one line of the form
//
//	BenchmarkName/sub=1-8  1234  5678 ns/op  9.1 MB/s  42 B/op  7 allocs/op  3.5 custom%
func parseBenchLine(line string) (BenchResult, error) {
	f := strings.Fields(line)
	if len(f) < 2 {
		return BenchResult{}, fmt.Errorf("obs: short benchmark line %q", line)
	}
	res := BenchResult{Name: f[0]}
	// Split the trailing -<procs> suffix the testing package appends.
	if i := strings.LastIndexByte(res.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(res.Name[i+1:]); err == nil {
			res.Name, res.Procs = res.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return BenchResult{}, fmt.Errorf("obs: bad iteration count in %q: %w", line, err)
	}
	res.Iterations = n
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return BenchResult{}, fmt.Errorf("obs: bad value %q in %q", f[i], line)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "MB/s":
			res.MBPerSec = v
		case "B/op":
			res.BytesPerOp = int64(v)
		case "allocs/op":
			res.AllocsPerOp = int64(v)
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	if res.NsPerOp <= 0 {
		return BenchResult{}, fmt.Errorf("obs: benchmark line %q has no ns/op", line)
	}
	return res, nil
}

// Validate checks the snapshot for schema conformance: the schema tag,
// a well-formed stamp, environment fields, and at least one result
// with a name and positive timing.
func (s *BenchSnapshot) Validate() error {
	if s.Schema != BenchSchema {
		return fmt.Errorf("obs: bench snapshot schema %q, want %q", s.Schema, BenchSchema)
	}
	if len(s.Stamp) != len(BenchStampLayout) || !strings.HasSuffix(s.Stamp, "Z") {
		return fmt.Errorf("obs: bench snapshot stamp %q does not match layout %s", s.Stamp, BenchStampLayout)
	}
	if s.GoVersion == "" || s.GOOS == "" || s.GOARCH == "" {
		return fmt.Errorf("obs: bench snapshot missing environment (go=%q goos=%q goarch=%q)",
			s.GoVersion, s.GOOS, s.GOARCH)
	}
	if len(s.Results) == 0 {
		return fmt.Errorf("obs: bench snapshot has no results")
	}
	for i, r := range s.Results {
		if r.Name == "" {
			return fmt.Errorf("obs: bench result %d has no name", i)
		}
		if r.NsPerOp <= 0 {
			return fmt.Errorf("obs: bench result %q has non-positive ns/op", r.Name)
		}
		if r.Iterations <= 0 {
			return fmt.Errorf("obs: bench result %q has non-positive iterations", r.Name)
		}
	}
	return nil
}

// ReadBenchSnapshot decodes and validates one snapshot file.
func ReadBenchSnapshot(r io.Reader) (*BenchSnapshot, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s BenchSnapshot
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: bench snapshot: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteJSON serializes the snapshot as indented JSON.
func (s *BenchSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
