package obs

import (
	"sync"
	"time"
)

// SLOConfig describes the serving objectives tracked by an SLOTracker.
type SLOConfig struct {
	// Window is the rolling evaluation window (default 5m, floor 10s).
	Window time.Duration
	// Availability is the fraction of requests that must not fail
	// (5xx), e.g. 0.999. The error budget is 1 - Availability.
	Availability float64
	// LatencyObjective is the per-request latency bound, and
	// LatencyTarget the fraction of requests that must meet it
	// (e.g. 250ms at 0.99).
	LatencyObjective time.Duration
	LatencyTarget    float64
	// BurnThreshold is the burn rate at which Ready flips false
	// (default 2: consuming budget at twice the sustainable rate
	// degrades /readyz before /healthz would ever fail).
	BurnThreshold float64
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.Window < 10*time.Second {
		c.Window = 10 * time.Second
	}
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.999
	}
	if c.LatencyObjective <= 0 {
		c.LatencyObjective = 250 * time.Millisecond
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.BurnThreshold <= 0 {
		c.BurnThreshold = 2
	}
	return c
}

// sloBucket aggregates one second of observations.
type sloBucket struct {
	sec    int64
	total  int64
	errors int64
	slow   int64
}

// SLOTracker maintains rolling-window availability and latency
// objectives over per-second buckets. Observe is O(1) under one mutex
// with a tiny critical section; Status folds the live window. A nil
// tracker is a valid disabled tracker: Observe is a no-op and Status
// reports an always-ready zero window.
type SLOTracker struct {
	cfg SLOConfig

	// epoch anchors the bucket index. Elapsed seconds are measured
	// against it via time.Time.Sub, which uses the monotonic clock for
	// readings taken from time.Now — a wall-clock step (NTP correction,
	// manual reset) can therefore never stamp new observations into the
	// past or resurrect buckets that aged out of the window.
	epoch time.Time
	now   func() time.Time // swapped by tests for deterministic clocks

	mu      sync.Mutex
	buckets []sloBucket

	// Cumulative burn counters (exported as Prometheus counters).
	cumTotal  int64
	cumErrors int64
	cumSlow   int64
}

// NewSLOTracker returns a tracker for the given objectives.
func NewSLOTracker(cfg SLOConfig) *SLOTracker {
	cfg = cfg.withDefaults()
	return &SLOTracker{
		cfg:     cfg,
		epoch:   time.Now(),
		now:     time.Now,
		buckets: make([]sloBucket, int(cfg.Window/time.Second)),
	}
}

// sec returns the current bucket timestamp: whole seconds since the
// tracker's epoch, offset by 1 so a live bucket's stamp is never the
// zero value that unused ring slots carry.
func (t *SLOTracker) sec() int64 {
	return int64(t.now().Sub(t.epoch)/time.Second) + 1
}

// Config returns the tracker's effective (defaulted) config.
func (t *SLOTracker) Config() SLOConfig {
	if t == nil {
		return SLOConfig{}.withDefaults()
	}
	return t.cfg
}

// Observe records one completed request. Nil-safe.
func (t *SLOTracker) Observe(d time.Duration, isError bool) {
	if t == nil {
		return
	}
	sec := t.sec()
	t.mu.Lock()
	b := &t.buckets[sec%int64(len(t.buckets))]
	if b.sec != sec {
		*b = sloBucket{sec: sec}
	}
	b.total++
	t.cumTotal++
	if isError {
		b.errors++
		t.cumErrors++
	}
	if d > t.cfg.LatencyObjective {
		b.slow++
		t.cumSlow++
	}
	t.mu.Unlock()
}

// SLOStatus is one evaluation of the rolling window.
type SLOStatus struct {
	WindowSeconds int     `json:"window_s"`
	Total         int64   `json:"total"`
	Errors        int64   `json:"errors"`
	Slow          int64   `json:"slow"`
	ErrorBurn     float64 `json:"error_burn"`   // 1.0 = consuming exactly the error budget
	LatencyBurn   float64 `json:"latency_burn"` // 1.0 = consuming exactly the latency budget
	Ready         bool    `json:"ready"`
}

// Status evaluates the window now. An empty window is ready (no
// traffic means no budget burn). Nil-safe.
func (t *SLOTracker) Status() SLOStatus {
	if t == nil {
		return SLOStatus{Ready: true}
	}
	now := t.sec()
	t.mu.Lock()
	var total, errors, slow int64
	for i := range t.buckets {
		b := &t.buckets[i]
		if b.sec > now-int64(len(t.buckets)) && b.sec <= now {
			total += b.total
			errors += b.errors
			slow += b.slow
		}
	}
	t.mu.Unlock()

	st := SLOStatus{
		WindowSeconds: len(t.buckets),
		Total:         total, Errors: errors, Slow: slow,
		Ready: true,
	}
	if total > 0 {
		st.ErrorBurn = (float64(errors) / float64(total)) / (1 - t.cfg.Availability)
		st.LatencyBurn = (float64(slow) / float64(total)) / (1 - t.cfg.LatencyTarget)
		st.Ready = st.ErrorBurn < t.cfg.BurnThreshold && st.LatencyBurn < t.cfg.BurnThreshold
	}
	return st
}

// Publish exports the tracker's cumulative burn counters and the
// current window as registry metrics (called at scrape time so the
// exposition always reflects a fresh evaluation). Nil-safe on both
// receiver and registry.
func (t *SLOTracker) Publish(reg *Registry) {
	if t == nil || reg == nil {
		return
	}
	st := t.Status()
	t.mu.Lock()
	cumTotal, cumErrors, cumSlow := t.cumTotal, t.cumErrors, t.cumSlow
	t.mu.Unlock()

	// Counters are cumulative and monotone; Add the delta against the
	// registry's current value so repeated Publish calls stay exact.
	setCounter := func(name string, v int64) {
		c := reg.Counter(name)
		if d := v - c.Value(); d > 0 {
			c.Add(d)
		}
	}
	setCounter("ninecd.slo.observed", cumTotal)
	setCounter("ninecd.slo.errors", cumErrors)
	setCounter("ninecd.slo.slow", cumSlow)
	reg.Gauge("ninecd.slo.window_total").Set(st.Total)
	reg.Gauge("ninecd.slo.window_errors").Set(st.Errors)
	reg.Gauge("ninecd.slo.window_slow").Set(st.Slow)
	reg.Gauge("ninecd.slo.error_burn_ppm").Set(int64(st.ErrorBurn * 1e6))
	reg.Gauge("ninecd.slo.latency_burn_ppm").Set(int64(st.LatencyBurn * 1e6))
	ready := int64(0)
	if st.Ready {
		ready = 1
	}
	reg.Gauge("ninecd.slo.ready").Set(ready)
}
