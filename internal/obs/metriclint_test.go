package obs

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// TestMetricNameContract is the repo's metriclint: it scans every
// non-test Go source file for metric and span registrations and
// enforces the naming contract end to end:
//
//  1. every string literal contributing to a metric name is
//     dot-separated lowercase ([a-z0-9._] only), so the dotted
//     namespace stays greppable and consistent;
//  2. every fully-literal name is a well-formed dotted name (no empty
//     segments, no leading/trailing dot);
//  3. the Prometheus mapping (PromName plus the derived _total /
//     _bucket / _sum / _count families and span.<name> histograms) is
//     collision-free — no two distinct registrations can ever emit the
//     same exposition series.
//
// Run by `make metriclint` (and therefore `make check`).
func TestMetricNameContract(t *testing.T) {
	root := filepath.Join("..", "..")

	// call site: .Counter("..."), .Gauge(...), etc. The first argument
	// is captured when it is a concatenation of string literals and
	// simple expressions; calls whose name is computed elsewhere (e.g. a
	// variable) contribute only their literal pieces.
	callRe := regexp.MustCompile(
		`\.(Counter|Gauge|Histogram|FixedHistogram|Span|Describe)\(\s*((?:"[^"]*"|[A-Za-z_][A-Za-z0-9_.\[\]()]*)(?:\s*\+\s*(?:"[^"]*"|[A-Za-z_][A-Za-z0-9_.\[\]()]*))*)`)
	litRe := regexp.MustCompile(`"([^"]*)"`)
	pieceOK := regexp.MustCompile(`^[a-z0-9._]*$`)
	fullOK := regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)

	// series -> "kind dotted-name (file)" of the registration that owns it.
	series := make(map[string]string)
	var errs []string
	claim := func(name, kind, owner string, fams ...string) {
		for _, fam := range fams {
			if prev, ok := series[fam]; ok && prev != kind+" "+name {
				errs = append(errs, fmt.Sprintf(
					"Prometheus series %q claimed by both %s and %s %s (%s)",
					fam, prev, kind, name, owner))
			}
			series[fam] = kind + " " + name
		}
	}

	nFiles := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "related" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		nFiles++
		rel, _ := filepath.Rel(root, path)
		for _, m := range callRe.FindAllStringSubmatch(string(data), -1) {
			kind, arg := m[1], m[2]
			lits := litRe.FindAllStringSubmatch(arg, -1)
			for _, lit := range lits {
				if !pieceOK.MatchString(lit[1]) {
					errs = append(errs, fmt.Sprintf(
						"%s: %s name piece %q violates the charset contract [a-z0-9._]",
						rel, kind, lit[1]))
				}
			}
			// Fully-literal names (a single quoted string, nothing else)
			// additionally join the collision check.
			if len(lits) != 1 || strings.TrimSpace(arg) != `"`+lits[0][1]+`"` {
				continue
			}
			name := lits[0][1]
			if !fullOK.MatchString(name) {
				errs = append(errs, fmt.Sprintf(
					"%s: %s name %q is not a well-formed dotted name", rel, kind, name))
				continue
			}
			p := PromName(name)
			switch kind {
			case "Counter":
				claim(name, kind, rel, p+"_total")
			case "Gauge":
				claim(name, kind, rel, p)
			case "Histogram", "FixedHistogram":
				claim(name, "histogram", rel, p+"_bucket", p+"_sum", p+"_count")
			case "Span":
				// A span records its duration into histogram span.<name>.
				sp := PromName("span." + name)
				claim("span."+name, "histogram", rel, sp+"_bucket", sp+"_sum", sp+"_count")
			case "Describe":
				// Documentation only; no series.
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nFiles < 10 {
		t.Fatalf("metriclint only saw %d source files — walk is broken", nFiles)
	}
	// Known registrations must have been discovered, or the call regex
	// has silently stopped matching and the lint is vacuous.
	for _, want := range []string{"ninecd_inflight", "ninecd_slo_window_total"} {
		if _, ok := series[want]; !ok {
			t.Errorf("expected series %q was not discovered — call scan broken?", want)
		}
	}
	if len(errs) > 0 {
		sort.Strings(errs)
		t.Fatalf("metric-name contract violations:\n  %s", strings.Join(errs, "\n  "))
	}
}

// TestMetricNameContractCatches proves the linter logic itself rejects
// the failure modes it exists for, so a green run means something.
func TestMetricNameContractCatches(t *testing.T) {
	bad := []string{"Bad.Upper", "trailing.", ".leading", "double..dot", "spaces in name", ""}
	fullOK := regexp.MustCompile(`^[a-z0-9_]+(\.[a-z0-9_]+)*$`)
	for _, name := range bad {
		if fullOK.MatchString(name) {
			t.Errorf("contract accepted %q", name)
		}
	}
	// The collision the mapping must catch: dots and underscores merge.
	if PromName("a.b_c") != PromName("a_b.c") {
		t.Error("expected these to collide under PromName — the check depends on it")
	}
}
