package obs

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	// Behind the -pprof flag: registers the profiling handlers on the
	// default mux served below. Imported for side effects only.
	_ "net/http/pprof"
)

// CLIConfig carries the standard telemetry flags every command in this
// repository exposes: -metrics, -trace, and -pprof.
type CLIConfig struct {
	Metrics   string // snapshot destination file, "-" for stdout, "" off
	Trace     string // NDJSON event sink file, "" off
	PprofAddr string // net/http/pprof listen address, "" off
}

// RegisterFlags installs the three telemetry flags on fs.
func (c *CLIConfig) RegisterFlags(fs *flag.FlagSet) {
	fs.StringVar(&c.Metrics, "metrics", "", "write a metrics snapshot (JSON) to this file on exit; '-' = stdout")
	fs.StringVar(&c.Trace, "trace", "", "append structured JSON trace events to this file")
	fs.StringVar(&c.PprofAddr, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
}

// Start enables process-wide telemetry according to the config: it
// builds a registry, attaches the trace sink, starts the pprof server,
// and calls Enable. The returned stop function flushes the metrics
// snapshot, closes the sink, and disables telemetry; it must run
// before process exit. When every field is empty telemetry stays
// disabled and stop is a cheap no-op.
func (c CLIConfig) Start() (stop func() error, err error) {
	if c.Metrics == "" && c.Trace == "" && c.PprofAddr == "" {
		return func() error { return nil }, nil
	}
	reg := NewRegistry()

	var traceFile *os.File
	if c.Trace != "" {
		traceFile, err = os.Create(c.Trace)
		if err != nil {
			return nil, fmt.Errorf("obs: trace sink: %w", err)
		}
		reg.SetSink(NewJSONSink(traceFile))
	}

	var ln net.Listener
	if c.PprofAddr != "" {
		ln, err = net.Listen("tcp", c.PprofAddr)
		if err != nil {
			if traceFile != nil {
				traceFile.Close()
			}
			return nil, fmt.Errorf("obs: pprof listener: %w", err)
		}
		srv := &http.Server{} // DefaultServeMux, where net/http/pprof registered
		go srv.Serve(ln)
	}

	Enable(reg)
	return func() error {
		Disable()
		var firstErr error
		if c.Metrics != "" {
			out := os.Stdout
			if c.Metrics != "-" {
				f, err := os.Create(c.Metrics)
				if err != nil {
					firstErr = err
				} else {
					out = f
					defer f.Close()
				}
			}
			if firstErr == nil {
				if err := reg.Snapshot().WriteJSON(out); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if ln != nil {
			ln.Close()
		}
		return firstErr
	}, nil
}
