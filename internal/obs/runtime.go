package obs

import (
	"runtime"
	rtm "runtime/metrics"
	"sync"
	"time"
)

// RuntimeCollector samples Go runtime health into a registry: heap and
// GC gauges from runtime.ReadMemStats, per-pause GC durations into the
// log2 histogram runtime.gc_pause_ns, and scheduler-latency quantiles
// from runtime/metrics' /sched/latencies:seconds (computed over the
// delta since the previous sample, so the gauges reflect recent
// behavior, not the process lifetime). Sample is cheap enough to run
// both on a background ticker and on demand at /metrics scrape time.
type RuntimeCollector struct {
	reg *Registry

	mu         sync.Mutex
	lastNumGC  uint32
	schedPrev  []uint64 // previous cumulative sched-latency bucket counts
	schedOK    bool
	samples    [1]rtm.Sample
	lastSample time.Time
}

// schedLatencyMetric is the runtime/metrics name sampled for scheduler
// latency.
const schedLatencyMetric = "/sched/latencies:seconds"

// NewRuntimeCollector returns a collector publishing into reg. A nil
// registry yields a nil collector whose methods are no-ops.
func NewRuntimeCollector(reg *Registry) *RuntimeCollector {
	if reg == nil {
		return nil
	}
	c := &RuntimeCollector{reg: reg}
	c.samples[0].Name = schedLatencyMetric
	reg.Describe("runtime.gc_pause_ns", "stop-the-world GC pause durations in nanoseconds")
	reg.Describe("runtime.gc_cpu_fraction_ppm", "fraction of available CPU consumed by the GC, in parts per million")
	reg.Describe("runtime.sched_latency_p50_ns", "median goroutine scheduling latency since the previous sample")
	reg.Describe("runtime.sched_latency_p99_ns", "p99 goroutine scheduling latency since the previous sample")
	return c
}

// Sample takes one runtime sample and publishes it. Nil-safe, and
// rate-limited to one real sample per 100ms so a scrape storm cannot
// turn ReadMemStats into load.
func (c *RuntimeCollector) Sample() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	if now.Sub(c.lastSample) < 100*time.Millisecond {
		return
	}
	c.lastSample = now

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg := c.reg
	reg.Gauge("runtime.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	reg.Gauge("runtime.heap_inuse_bytes").Set(int64(ms.HeapInuse))
	reg.Gauge("runtime.heap_sys_bytes").Set(int64(ms.HeapSys))
	reg.Gauge("runtime.next_gc_bytes").Set(int64(ms.NextGC))
	reg.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	reg.Gauge("runtime.num_gc").Set(int64(ms.NumGC))
	reg.Gauge("runtime.gc_pause_total_ns").Set(int64(ms.PauseTotalNs))
	reg.Gauge("runtime.gc_cpu_fraction_ppm").Set(int64(ms.GCCPUFraction * 1e6))

	// New GC pauses since the previous sample land in the pause
	// histogram; the runtime keeps the last 256 in a ring.
	if n := ms.NumGC - c.lastNumGC; n > 0 {
		if n > 256 {
			n = 256
		}
		h := reg.Histogram("runtime.gc_pause_ns")
		for i := uint32(0); i < n; i++ {
			h.Observe(int64(ms.PauseNs[(ms.NumGC-1-i)%256]))
		}
	}
	c.lastNumGC = ms.NumGC

	c.sampleSchedLatency(reg)
}

// sampleSchedLatency publishes p50/p99 scheduler latency over the
// bucket-count delta since the previous call.
func (c *RuntimeCollector) sampleSchedLatency(reg *Registry) {
	rtm.Read(c.samples[:])
	if c.samples[0].Value.Kind() != rtm.KindFloat64Histogram {
		return
	}
	h := c.samples[0].Value.Float64Histogram()
	if h == nil || len(h.Counts) == 0 {
		return
	}
	cur := h.Counts
	var delta []uint64
	if c.schedOK && len(c.schedPrev) == len(cur) {
		delta = make([]uint64, len(cur))
		for i := range cur {
			delta[i] = cur[i] - c.schedPrev[i]
		}
	} else {
		delta = cur
	}
	c.schedPrev = append(c.schedPrev[:0], cur...)
	c.schedOK = true

	total := uint64(0)
	for _, d := range delta {
		total += d
	}
	if total == 0 {
		return
	}
	reg.Gauge("runtime.sched_latency_p50_ns").Set(schedQuantileNs(h.Buckets, delta, total, 0.50))
	reg.Gauge("runtime.sched_latency_p99_ns").Set(schedQuantileNs(h.Buckets, delta, total, 0.99))
}

// schedQuantileNs picks the upper boundary (in ns) of the bucket
// containing the q-th observation. Buckets has len(counts)+1 edges.
func schedQuantileNs(buckets []float64, counts []uint64, total uint64, q float64) int64 {
	rank := uint64(q * float64(total))
	cum := uint64(0)
	for i, cnt := range counts {
		cum += cnt
		if cum > rank {
			hi := buckets[i+1]
			if hi > 10 { // +Inf or absurd edge: report the lower edge instead
				hi = buckets[i]
			}
			return int64(hi * 1e9)
		}
	}
	return int64(buckets[len(buckets)-1] * 1e9)
}

// Start launches a background sampling loop at the given interval
// (default 5s when non-positive) and returns its stop function.
// Nil-safe: a nil collector returns a no-op stop.
func (c *RuntimeCollector) Start(interval time.Duration) (stop func()) {
	if c == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		c.Sample()
		for {
			select {
			case <-t.C:
				c.Sample()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
