package obs

import (
	"testing"
	"time"
)

// TestSLOWindowExpiresStaleBuckets drives the tracker with a fake
// clock: a burst of errors degrades readiness, and once the clock
// moves past the window the stale buckets must age out — readiness
// recovers and the window drains to zero without any new traffic.
func TestSLOWindowExpiresStaleBuckets(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Window:       10 * time.Second,
		Availability: 0.9,
	})
	clock := tr.epoch
	tr.now = func() time.Time { return clock }

	for i := 0; i < 20; i++ {
		tr.Observe(time.Millisecond, true)
	}
	if st := tr.Status(); st.Ready || st.Total != 20 {
		t.Fatalf("all-error window should degrade: %+v", st)
	}

	// One second shy of expiry the errors still count.
	clock = clock.Add(9 * time.Second)
	if st := tr.Status(); st.Ready || st.Total != 20 {
		t.Fatalf("errors aged out one second early: %+v", st)
	}

	// Past the window the burst is gone and readiness recovers.
	clock = clock.Add(2 * time.Second)
	st := tr.Status()
	if !st.Ready {
		t.Fatalf("stale errors still degrade readiness: %+v", st)
	}
	if st.Total != 0 || st.Errors != 0 {
		t.Fatalf("window not drained after expiry: %+v", st)
	}

	// The cumulative burn counters survive window expiry.
	reg := NewRegistry()
	tr.Publish(reg)
	if got := reg.Counter("ninecd.slo.errors").Value(); got != 20 {
		t.Errorf("cumulative errors = %d, want 20", got)
	}
	if reg.Gauge("ninecd.slo.ready").Value() != 1 {
		t.Error("ready gauge should be 1 after the window drained")
	}
}

// TestSLOBucketReuseResets pins the ring-slot aliasing case: an
// observation landing exactly one window after an old one maps to the
// same slot and must replace the stale counts, never merge with them.
func TestSLOBucketReuseResets(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{Window: 10 * time.Second, Availability: 0.9})
	clock := tr.epoch
	tr.now = func() time.Time { return clock }

	for i := 0; i < 5; i++ {
		tr.Observe(time.Millisecond, true)
	}
	clock = clock.Add(10 * time.Second) // same slot index, one window later
	tr.Observe(time.Millisecond, false)

	st := tr.Status()
	if st.Total != 1 || st.Errors != 0 {
		t.Fatalf("reused slot merged stale counts: %+v", st)
	}
	if !st.Ready {
		t.Fatalf("fresh healthy traffic should be ready: %+v", st)
	}
}
