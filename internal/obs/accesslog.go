package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// AccessEvent is one completed request in the NDJSON access log: the
// trace ID, routing, sizes, and timing — the same redaction standard
// as TraceRecord, so no field ever carries payload bytes.
type AccessEvent struct {
	TimeUnixNano int64  `json:"t"`
	Trace        string `json:"trace"`
	Route        string `json:"route"`
	Method       string `json:"method,omitempty"`
	Status       int    `json:"status"`
	BytesIn      int64  `json:"bytes_in"`
	BytesOut     int64  `json:"bytes_out"`
	QueueWaitNs  int64  `json:"queue_wait_ns,omitempty"`
	HandlerNs    int64  `json:"handler_ns"`
	ErrClass     string `json:"err_class,omitempty"`
}

// AccessLog writes one JSON object per completed request, mutex
// serialized so concurrent requests never interleave bytes. A nil
// *AccessLog is a valid disabled log: Log is a no-op, which is how the
// daemon runs unless -access-log is set.
type AccessLog struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewAccessLog returns an access log writing NDJSON events to w.
func NewAccessLog(w io.Writer) *AccessLog {
	return &AccessLog{enc: json.NewEncoder(w)}
}

// Log writes one event line, stamping the time if unset. Encoding or
// write errors are dropped — the access log must never fail the
// request it records. Nil-safe.
func (l *AccessLog) Log(e AccessEvent) {
	if l == nil {
		return
	}
	if e.TimeUnixNano == 0 {
		e.TimeUnixNano = time.Now().UnixNano()
	}
	l.mu.Lock()
	_ = l.enc.Encode(e)
	l.mu.Unlock()
}
