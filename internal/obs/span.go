package obs

import (
	"sync"
	"time"
)

// Span measures one timed stage. End records the duration into the
// histogram "span.<name>" (nanoseconds) and, when a sink is attached,
// emits a "span" event carrying the span's fields. Spans nest through
// Child and are goroutine-safe across spans (a single span's Set/End
// must not race with itself, matching the usual start/stop usage).
type Span struct {
	r       *Registry
	name    string
	id      int64
	parent  int64
	trace   string
	collect *spanCollector
	start   time.Time
	fields  map[string]any
}

// Span starts a root span. Nil-safe: a nil registry returns a nil
// span whose every method is a no-op.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, id: r.spanID.Add(1), start: time.Now()}
}

// Child starts a nested span; its trace event links back through the
// parent span ID, and it inherits the parent's trace ID and span
// collector (so a whole request tree lands in one TraceRecord).
// Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.r.Span(name)
	c.parent = s.id
	c.trace = s.trace
	c.collect = s.collect
	return c
}

// WithTraceID stamps the span (and, through Child, its descendants)
// with a request-scoped trace ID carried on every emitted event.
// It returns the span for chaining and is nil-safe.
func (s *Span) WithTraceID(id string) *Span {
	if s == nil {
		return nil
	}
	s.trace = id
	return s
}

// TraceID returns the span's trace ID ("" on nil or untraced spans).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// Collect attaches a fresh span collector: this span and every
// descendant started through Child append a SpanRecord on End, drained
// by Records. Meant for request root spans; nil-safe.
func (s *Span) Collect() *Span {
	if s == nil {
		return nil
	}
	s.collect = &spanCollector{}
	return s
}

// Records drains the collected span records (nil without a collector
// or on a nil span). Call after End; the records carry only names,
// IDs, and durations — never payload data.
func (s *Span) Records() []SpanRecord {
	if s == nil || s.collect == nil {
		return nil
	}
	return s.collect.take()
}

// spanCollector accumulates the finished spans of one trace.
type spanCollector struct {
	mu    sync.Mutex
	spans []SpanRecord
}

func (c *spanCollector) add(rec SpanRecord) {
	c.mu.Lock()
	c.spans = append(c.spans, rec)
	c.mu.Unlock()
}

func (c *spanCollector) take() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.spans
	c.spans = nil
	return out
}

// Set attaches a key/value field included in the span's trace event.
// It returns the span for chaining and is nil-safe.
func (s *Span) Set(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.fields == nil {
		s.fields = make(map[string]any, 4)
	}
	s.fields[key] = v
	return s
}

// Elapsed returns the time since the span started (0 on nil).
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End closes the span: the duration lands in histogram "span.<name>"
// and a "span" event goes to the sink. No-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.r.Histogram("span." + s.name).Observe(dur.Nanoseconds())
	if s.collect != nil {
		s.collect.add(SpanRecord{
			Name: s.name, SpanID: s.id, ParentID: s.parent,
			StartUnixNano: s.start.UnixNano(), DurNs: dur.Nanoseconds(),
		})
	}
	s.r.emit(Event{
		Type:     "span",
		Name:     s.name,
		Trace:    s.trace,
		DurNs:    dur.Nanoseconds(),
		SpanID:   s.id,
		ParentID: s.parent,
		Fields:   s.fields,
	})
}
