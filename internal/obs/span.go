package obs

import "time"

// Span measures one timed stage. End records the duration into the
// histogram "span.<name>" (nanoseconds) and, when a sink is attached,
// emits a "span" event carrying the span's fields. Spans nest through
// Child and are goroutine-safe across spans (a single span's Set/End
// must not race with itself, matching the usual start/stop usage).
type Span struct {
	r      *Registry
	name   string
	id     int64
	parent int64
	start  time.Time
	fields map[string]any
}

// Span starts a root span. Nil-safe: a nil registry returns a nil
// span whose every method is a no-op.
func (r *Registry) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, id: r.spanID.Add(1), start: time.Now()}
}

// Child starts a nested span; its trace event links back through the
// parent span ID. Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := s.r.Span(name)
	c.parent = s.id
	return c
}

// Set attaches a key/value field included in the span's trace event.
// It returns the span for chaining and is nil-safe.
func (s *Span) Set(key string, v any) *Span {
	if s == nil {
		return nil
	}
	if s.fields == nil {
		s.fields = make(map[string]any, 4)
	}
	s.fields[key] = v
	return s
}

// Elapsed returns the time since the span started (0 on nil).
func (s *Span) Elapsed() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// End closes the span: the duration lands in histogram "span.<name>"
// and a "span" event goes to the sink. No-op on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start)
	s.r.Histogram("span." + s.name).Observe(dur.Nanoseconds())
	s.r.emit(Event{
		Type:     "span",
		Name:     s.name,
		DurNs:    dur.Nanoseconds(),
		SpanID:   s.id,
		ParentID: s.parent,
		Fields:   s.fields,
	})
}
