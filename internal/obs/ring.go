package obs

import "sync"

// SpanRecord is one finished span inside a retained trace: name,
// identity, and timing only — span fields are deliberately excluded so
// a trace export can never carry payload bytes or internal state.
type SpanRecord struct {
	Name          string `json:"name"`
	SpanID        int64  `json:"span"`
	ParentID      int64  `json:"parent,omitempty"`
	StartUnixNano int64  `json:"t"`
	DurNs         int64  `json:"dur_ns"`
}

// TraceRecord is one completed request as retained by a TraceBuffer:
// routing metadata, sizes, timing, and the nested span tree. No field
// ever holds request or response payload bytes.
type TraceRecord struct {
	TraceID       string       `json:"trace"`
	Route         string       `json:"route"`
	Method        string       `json:"method,omitempty"`
	Status        int          `json:"status"`
	StartUnixNano int64        `json:"t"`
	DurNs         int64        `json:"dur_ns"`
	BytesIn       int64        `json:"bytes_in,omitempty"`
	BytesOut      int64        `json:"bytes_out,omitempty"`
	QueueWaitNs   int64        `json:"queue_wait_ns,omitempty"`
	ErrClass      string       `json:"err_class,omitempty"`
	Spans         []SpanRecord `json:"spans,omitempty"`
}

// TraceBuffer retains the N most recent and the N slowest completed
// traces under one short-critical-section mutex: Record copies a
// fixed-size struct header and at most shifts the slow list, so it is
// cheap enough for every request. The buffer is bounded — memory never
// grows with traffic.
type TraceBuffer struct {
	mu      sync.Mutex
	recent  []TraceRecord // ring; next is the oldest slot
	next    int
	filled  bool
	slow    []TraceRecord // ascending by DurNs; [0] is the fastest kept
	slowCap int
	total   int64
}

// NewTraceBuffer returns a buffer keeping the given number of recent
// and slowest traces (minimum 1 each).
func NewTraceBuffer(recent, slowest int) *TraceBuffer {
	if recent < 1 {
		recent = 1
	}
	if slowest < 1 {
		slowest = 1
	}
	return &TraceBuffer{
		recent:  make([]TraceRecord, recent),
		slow:    make([]TraceRecord, 0, slowest),
		slowCap: slowest,
	}
}

// Record retains one completed trace. Nil-safe no-op.
func (b *TraceBuffer) Record(rec TraceRecord) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.total++
	b.recent[b.next] = rec
	b.next++
	if b.next == len(b.recent) {
		b.next, b.filled = 0, true
	}
	if len(b.slow) < b.slowCap {
		b.slow = append(b.slow, rec)
		b.sortUpFrom(len(b.slow) - 1)
	} else if rec.DurNs > b.slow[0].DurNs {
		b.slow[0] = rec
		b.sortUpFrom(0)
	}
}

// sortUpFrom restores ascending DurNs order after slot i changed, by
// bubbling it toward its place (the list is tiny and already sorted
// elsewhere, so this is O(len)).
func (b *TraceBuffer) sortUpFrom(i int) {
	for i+1 < len(b.slow) && b.slow[i].DurNs > b.slow[i+1].DurNs {
		b.slow[i], b.slow[i+1] = b.slow[i+1], b.slow[i]
		i++
	}
	for i > 0 && b.slow[i].DurNs < b.slow[i-1].DurNs {
		b.slow[i], b.slow[i-1] = b.slow[i-1], b.slow[i]
		i--
	}
}

// Traces returns copies of the retained traces: recent newest-first
// and slowest slowest-first. Nil-safe (empty results).
func (b *TraceBuffer) Traces() (recent, slowest []TraceRecord) {
	if b == nil {
		return nil, nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.next
	if !b.filled {
		recent = make([]TraceRecord, 0, n)
		for i := n - 1; i >= 0; i-- {
			recent = append(recent, b.recent[i])
		}
	} else {
		recent = make([]TraceRecord, 0, len(b.recent))
		for i := 0; i < len(b.recent); i++ {
			recent = append(recent, b.recent[(n-1-i+len(b.recent))%len(b.recent)])
		}
	}
	slowest = make([]TraceRecord, len(b.slow))
	for i := range b.slow {
		slowest[i] = b.slow[len(b.slow)-1-i]
	}
	return recent, slowest
}

// Total returns how many traces have been recorded over the buffer's
// lifetime (0 on nil).
func (b *TraceBuffer) Total() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}
