package obs

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ninecd.http.encode.requests": "ninecd_http_encode_requests",
		"already_fine":                "already_fine",
		"9starts.with.digit":          "_9starts_with_digit",
		"weird-chars: here":           "weird_chars__here",
		"":                            "",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// parseProm pulls the samples and the HELP/TYPE sets out of an
// exposition for assertions.
func parseProm(t *testing.T, text string) (samples map[string]string, help, typ map[string]string) {
	t.Helper()
	samples = make(map[string]string)
	help = make(map[string]string)
	typ = make(map[string]string)
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, h, _ := strings.Cut(rest, " ")
			help[name] = h
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, k, _ := strings.Cut(rest, " ")
			typ[name] = k
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		samples[line[:i]] = line[i+1:]
	}
	return samples, help, typ
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("ninecd.http.requests").Add(7)
	r.Gauge("ninecd.inflight").Set(3)
	r.Describe("ninecd.http.requests", "total requests served")
	h := r.Histogram("ninecd.encode.us")
	for _, v := range []int64{0, 1, 2, 3, 1024} {
		h.Observe(v)
	}
	f := r.FixedHistogram("ninecd.http.encode.latency_seconds", []float64{0.001, 0.01, 0.1})
	f.Observe(0.0005)
	f.Observe(0.05)
	f.Observe(99) // overflow bucket

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	samples, help, typ := parseProm(t, text)

	if samples["ninecd_http_requests_total"] != "7" {
		t.Errorf("counter sample = %q, want 7", samples["ninecd_http_requests_total"])
	}
	if typ["ninecd_http_requests_total"] != "counter" {
		t.Errorf("counter TYPE = %q", typ["ninecd_http_requests_total"])
	}
	if help["ninecd_http_requests_total"] != "total requests served" {
		t.Errorf("Describe()d help lost: %q", help["ninecd_http_requests_total"])
	}
	if samples["ninecd_inflight"] != "3" || typ["ninecd_inflight"] != "gauge" {
		t.Errorf("gauge: %q / %q", samples["ninecd_inflight"], typ["ninecd_inflight"])
	}

	// Log2 histogram: exact integer bounds, cumulative, +Inf == _count.
	if typ["ninecd_encode_us"] != "histogram" {
		t.Errorf("hist TYPE = %q", typ["ninecd_encode_us"])
	}
	wantBuckets := map[string]string{
		`ninecd_encode_us_bucket{le="0"}`:    "1",
		`ninecd_encode_us_bucket{le="1"}`:    "2",
		`ninecd_encode_us_bucket{le="3"}`:    "4",
		`ninecd_encode_us_bucket{le="2047"}`: "5",
		`ninecd_encode_us_bucket{le="+Inf"}`: "5",
		"ninecd_encode_us_count":             "5",
		"ninecd_encode_us_sum":               "1030",
	}
	for series, want := range wantBuckets {
		if got := samples[series]; got != want {
			t.Errorf("%s = %q, want %q", series, got, want)
		}
	}

	// Fixed histogram: bounds as written, le inclusive, overflow in +Inf.
	wantFixed := map[string]string{
		`ninecd_http_encode_latency_seconds_bucket{le="0.001"}`: "1",
		`ninecd_http_encode_latency_seconds_bucket{le="0.01"}`:  "1",
		`ninecd_http_encode_latency_seconds_bucket{le="0.1"}`:   "2",
		`ninecd_http_encode_latency_seconds_bucket{le="+Inf"}`:  "3",
		"ninecd_http_encode_latency_seconds_count":              "3",
	}
	for series, want := range wantFixed {
		if got := samples[series]; got != want {
			t.Errorf("%s = %q, want %q", series, got, want)
		}
	}

	// Every sample family must carry HELP and TYPE.
	for series := range samples {
		name, _, _ := strings.Cut(series, "{")
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok {
				base = b
				break
			}
		}
		if typ[base] == "" {
			t.Errorf("series %s has no TYPE for family %s", series, base)
		}
		if help[base] == "" {
			t.Errorf("series %s has no HELP for family %s", series, base)
		}
	}
}

func TestWritePrometheusNilRegistry(t *testing.T) {
	var r *Registry
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil registry wrote %q", buf.String())
	}
}

// TestPrometheusConsistentUnderConcurrentWriters scrapes while writers
// hammer the registry and asserts each scrape is internally consistent:
// cumulative bucket series are non-decreasing and the +Inf bucket
// equals _count for every histogram family. Run under -race in CI.
func TestPrometheusConsistentUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h := r.Histogram("hammer.log2")
			f := r.FixedHistogram("hammer.fixed", []float64{1, 10, 100})
			c := r.Counter("hammer.count")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(int64(i % 5000))
				f.Observe(float64(i % 200))
				c.Inc()
			}
		}(w)
	}
	for scrapes := 0; scrapes < 50; scrapes++ {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		samples, _, _ := parseProm(t, buf.String())
		for _, fam := range []string{"hammer_log2", "hammer_fixed"} {
			var inf, maxBucket int64
			for series, val := range samples {
				if !strings.HasPrefix(series, fam+"_bucket") {
					continue
				}
				v, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					t.Fatalf("%s = %q: %v", series, val, err)
				}
				if strings.Contains(series, "+Inf") {
					inf = v
				} else if v > maxBucket {
					maxBucket = v
				}
			}
			count, _ := strconv.ParseInt(samples[fam+"_count"], 10, 64)
			if inf != count {
				t.Fatalf("scrape %d: %s +Inf bucket %d != _count %d", scrapes, fam, inf, count)
			}
			if maxBucket > inf {
				t.Fatalf("scrape %d: %s cumulative bucket %d exceeds +Inf %d", scrapes, fam, maxBucket, inf)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSnapshotConsistentUnderConcurrentWriters pins the JSON snapshot
// path under the race detector: bucket sums never exceed the count
// recorded in the same snapshot by more than the writers still in
// flight could explain, and the snapshot itself never tears.
func TestSnapshotConsistentUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := r.Histogram("snap.h")
			f := r.FixedHistogram("snap.f", DefaultLatencyBounds)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(int64(i))
				f.Observe(float64(i%100) / 100)
				r.Counter("snap.c").Inc()
				r.Gauge("snap.g").Set(int64(i))
			}
		}()
	}
	for i := 0; i < 100; i++ {
		s := r.Snapshot()
		if s.TimeUnixNano == 0 {
			t.Fatal("snapshot missing timestamp")
		}
		if hs, ok := s.Histograms["snap.h"]; ok {
			var sum int64
			for _, b := range hs.Buckets {
				sum += b.Count
			}
			if sum < 0 {
				t.Fatalf("bucket sum overflowed: %d", sum)
			}
		}
		if fs, ok := s.FixedHistograms["snap.f"]; ok {
			if len(fs.Counts) != len(fs.Bounds)+1 {
				t.Fatalf("fixed snapshot shape: %d counts for %d bounds", len(fs.Counts), len(fs.Bounds))
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestFixedHistogramObserve(t *testing.T) {
	h := newFixedHistogram([]float64{10, 1, 1, math.Inf(1), math.NaN(), 5})
	// Bounds sort, dedupe, and drop non-finite: {1, 5, 10}.
	if len(h.bounds) != 3 || h.bounds[0] != 1 || h.bounds[2] != 10 {
		t.Fatalf("bounds = %v, want [1 5 10]", h.bounds)
	}
	h.Observe(1) // le inclusive: lands in bucket 0
	h.Observe(2)
	h.Observe(100)          // overflow
	h.Observe(-7)           // clamps to first bucket
	h.Observe(math.NaN())   // clamps to first bucket
	h.Observe(math.Inf(-1)) // negative infinity clamps too
	s := h.snapshot()
	if s.Counts[0] != 4 || s.Counts[1] != 1 || s.Counts[3] != 1 {
		t.Errorf("counts = %v, want [4 1 0 1]", s.Counts)
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}

	// Empty bounds fall back to the latency defaults.
	d := newFixedHistogram(nil)
	if len(d.bounds) != len(DefaultLatencyBounds) {
		t.Errorf("fallback bounds = %v", d.bounds)
	}
}

// TestHistogramNegativeClamp pins the hardening contract: any negative
// value — math.MinInt64 included, whose bit pattern is hostile to
// naive bucket math — lands in bucket 0 and never corrupts the array.
func TestHistogramNegativeClamp(t *testing.T) {
	var h Histogram
	for _, v := range []int64{-1, -1024, math.MinInt64, 0} {
		h.Observe(v)
	}
	if got := h.buckets[0].Load(); got != 4 {
		t.Fatalf("bucket 0 = %d, want all 4 non-positive observations", got)
	}
	for i := 1; i < histBuckets; i++ {
		if h.buckets[i].Load() != 0 {
			t.Fatalf("bucket %d nonzero after negative observations", i)
		}
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
}
