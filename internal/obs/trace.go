package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: a trace ID names one external request, and
// spans started from that request's context inherit it, so the
// guard → admission → codec stages of one HTTP call share a single ID
// that is also echoed to the client as X-Request-ID. The context
// carries at most two values — the trace ID string and the current
// span — and every helper is nil-safe and free when telemetry is
// disabled (SpanCtx returns nil after one atomic load, without even
// touching the context).

type traceIDKey struct{}
type spanKey struct{}

// ContextWithTraceID returns ctx carrying the trace ID; spans started
// from it via SpanCtx inherit the ID.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFromContext returns the trace ID carried by ctx ("" if none).
func TraceIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// ContextWithSpan returns ctx carrying sp as the current span; SpanCtx
// nests new spans under it. A nil span returns ctx unchanged.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the current span carried by ctx (nil if
// none).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// SpanCtx starts a span as a child of the span in ctx when one is
// present (inheriting its trace ID and collector), and as a root span
// stamped with the context's trace ID otherwise. When telemetry is
// disabled it returns nil after a single atomic load — the context is
// not inspected, so the disabled hot path stays allocation-free.
func SpanCtx(ctx context.Context, name string) *Span {
	r := Active()
	if r == nil {
		return nil
	}
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.Child(name)
	}
	sp := r.Span(name)
	sp.trace = TraceIDFromContext(ctx)
	return sp
}

// traceSeq makes generated trace IDs unique within the process even if
// the random source ever fails; traceEntropy makes them unique across
// processes.
var (
	traceSeq     atomic.Uint64
	traceEntropy = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

// NewTraceID returns a fresh 16-hex-character request ID, unique per
// process instance (random 64-bit process tag mixed with a sequence
// counter). It never fails and never blocks.
func NewTraceID() string {
	n := traceSeq.Add(1)
	// Mix the counter through a 64-bit finalizer so consecutive IDs do
	// not share a prefix (splitmix64 output function).
	x := traceEntropy + n*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], x)
	return hex.EncodeToString(b[:])
}
