package obs

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
	"time"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEncodeCube/K=16-8         	    1176	    980571 ns/op	  66.82 MB/s
BenchmarkEncodeSetParallel/workers=1-8         	     548	   2144307 ns/op	  30.56 MB/s
BenchmarkDecodeCube-8   	     633	   1887172 ns/op	  34.72 MB/s	  270443 B/op	       8 allocs/op
BenchmarkTable2-8	       1	905341234 ns/op	        59.8 avgCR%
PASS
ok  	repro/internal/core	8.510s
`

func TestParseBenchOutput(t *testing.T) {
	snap, err := ParseBenchOutput(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" || !strings.Contains(snap.CPU, "Xeon") {
		t.Fatalf("environment: %+v", snap)
	}
	if len(snap.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(snap.Results))
	}
	r0 := snap.Results[0]
	if r0.Name != "BenchmarkEncodeCube/K=16" || r0.Procs != 8 {
		t.Fatalf("result 0 = %+v", r0)
	}
	if r0.Iterations != 1176 || r0.NsPerOp != 980571 || r0.MBPerSec != 66.82 {
		t.Fatalf("result 0 values = %+v", r0)
	}
	r2 := snap.Results[2]
	if r2.BytesPerOp != 270443 || r2.AllocsPerOp != 8 {
		t.Fatalf("result 2 = %+v", r2)
	}
	r3 := snap.Results[3]
	if r3.Metrics["avgCR%"] != 59.8 {
		t.Fatalf("custom metric: %+v", r3)
	}
}

func TestParseBenchOutputRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber",
		"BenchmarkX 10 zz ns/op",
		"BenchmarkX 10 5 B/op", // no ns/op
	} {
		if _, err := ParseBenchOutput(strings.NewReader(line + "\n")); err == nil {
			t.Fatalf("line %q accepted", line)
		}
	}
}

func validSnapshot() *BenchSnapshot {
	return &BenchSnapshot{
		Schema:     BenchSchema,
		Stamp:      time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC).Format(BenchStampLayout),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Results: []BenchResult{
			{Name: "BenchmarkEncodeSet/K=16", Iterations: 100, NsPerOp: 2.1e6},
		},
	}
}

func TestBenchSnapshotValidateAndRoundTrip(t *testing.T) {
	s := validSnapshot()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBenchSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Stamp != s.Stamp || len(back.Results) != 1 || back.Results[0].Name != s.Results[0].Name {
		t.Fatalf("round trip: %+v", back)
	}
}

func TestBenchSnapshotValidateRejects(t *testing.T) {
	breakers := map[string]func(*BenchSnapshot){
		"schema":     func(s *BenchSnapshot) { s.Schema = "other/v9" },
		"stamp":      func(s *BenchSnapshot) { s.Stamp = "2026-08-06" },
		"env":        func(s *BenchSnapshot) { s.GoVersion = "" },
		"empty":      func(s *BenchSnapshot) { s.Results = nil },
		"noname":     func(s *BenchSnapshot) { s.Results[0].Name = "" },
		"zero-ns":    func(s *BenchSnapshot) { s.Results[0].NsPerOp = 0 },
		"zero-iters": func(s *BenchSnapshot) { s.Results[0].Iterations = 0 },
	}
	for label, mutate := range breakers {
		s := validSnapshot()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Fatalf("%s: invalid snapshot accepted", label)
		}
	}
}

func TestReadBenchSnapshotRejectsUnknownFields(t *testing.T) {
	if _, err := ReadBenchSnapshot(strings.NewReader(`{"schema":"ninec-bench/v1","bogus":1}`)); err == nil {
		t.Fatal("unknown field accepted")
	}
}
