package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestNewTraceIDShapeAndUniqueness(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		for j := 0; j < len(id); j++ {
			c := id[j]
			if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
				t.Fatalf("trace ID %q is not lowercase hex", id)
			}
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestContextTraceIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := TraceIDFromContext(ctx); got != "" {
		t.Fatalf("empty context carries trace ID %q", got)
	}
	ctx = ContextWithTraceID(ctx, "abc123")
	if got := TraceIDFromContext(ctx); got != "abc123" {
		t.Fatalf("round trip = %q", got)
	}
	// Empty IDs are not stored.
	if ctx2 := ContextWithTraceID(context.Background(), ""); TraceIDFromContext(ctx2) != "" {
		t.Fatal("empty trace ID was stored")
	}
	if got := TraceIDFromContext(nil); got != "" { //nolint:staticcheck // nil-safety contract
		t.Fatalf("nil context returned %q", got)
	}
}

// TestSpanCtxNesting is the tracing contract end to end: a root span
// carries the context's trace ID, children started via SpanCtx inherit
// trace and collector, and Records() returns the finished children
// with correct parentage — names, IDs, and timings only.
func TestSpanCtxNesting(t *testing.T) {
	r := NewRegistry()
	Enable(r)
	defer Disable()

	ctx := ContextWithTraceID(context.Background(), "trace-1")
	root := SpanCtx(ctx, "http.request").Collect()
	if root.TraceID() != "trace-1" {
		t.Fatalf("root trace = %q, want trace-1", root.TraceID())
	}
	ctx = ContextWithSpan(ctx, root)

	child := SpanCtx(ctx, "core.encode_set")
	if child.TraceID() != "trace-1" {
		t.Fatalf("child trace = %q, want inherited trace-1", child.TraceID())
	}
	grand := SpanCtx(ContextWithSpan(ctx, child), "core.encode_worker")
	grand.Set("secret", "payload-bytes") // must NOT appear in records
	grand.End()
	child.End()
	root.End()

	recs := root.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (root + child + grandchild)", len(recs))
	}
	byName := make(map[string]SpanRecord, len(recs))
	for _, rec := range recs {
		byName[rec.Name] = rec
	}
	if byName["core.encode_set"].ParentID != byName["http.request"].SpanID {
		t.Error("child does not point at root")
	}
	if byName["core.encode_worker"].ParentID != byName["core.encode_set"].SpanID {
		t.Error("grandchild does not point at child")
	}

	// Redaction: serialized records carry no span fields.
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("payload-bytes")) || bytes.Contains(data, []byte("secret")) {
		t.Fatalf("span fields leaked into trace records: %s", data)
	}

	// Records drains: a second call is empty.
	if again := root.Records(); len(again) != 0 {
		t.Fatalf("Records did not drain: %d left", len(again))
	}
}

func TestSpanCtxDisabledReturnsNil(t *testing.T) {
	Disable()
	ctx := ContextWithTraceID(context.Background(), "t")
	if sp := SpanCtx(ctx, "x"); sp != nil {
		t.Fatal("SpanCtx returned a span while telemetry is disabled")
	}
}

// TestNewAPINilSafety drives every API added for the telemetry stack
// through nil receivers; all must be silent no-ops, because this is
// what the disabled path executes.
func TestNewAPINilSafety(t *testing.T) {
	var r *Registry
	if h := r.FixedHistogram("x", nil); h != nil {
		t.Fatal("nil registry returned a fixed histogram")
	}
	r.FixedHistogram("x", nil).Observe(1)
	r.FixedHistogram("x", nil).ObserveDuration(time.Second)
	if r.FixedHistogram("x", nil).Count() != 0 || r.FixedHistogram("x", nil).Sum() != 0 {
		t.Fatal("nil fixed histogram returned nonzero")
	}
	r.Describe("x", "help")
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var sp *Span
	if sp.WithTraceID("t") != nil {
		t.Fatal("nil span WithTraceID returned non-nil")
	}
	if sp.TraceID() != "" {
		t.Fatal("nil span has a trace ID")
	}
	if sp.Collect() != nil {
		t.Fatal("nil span Collect returned non-nil")
	}
	if sp.Records() != nil {
		t.Fatal("nil span Records returned non-nil")
	}

	var tb *TraceBuffer
	tb.Record(TraceRecord{})
	if rec, slow := tb.Traces(); rec != nil || slow != nil {
		t.Fatal("nil trace buffer returned traces")
	}
	if tb.Total() != 0 {
		t.Fatal("nil trace buffer has a total")
	}

	var al *AccessLog
	al.Log(AccessEvent{Route: "x"})

	var slo *SLOTracker
	slo.Observe(time.Second, true)
	if st := slo.Status(); !st.Ready {
		t.Fatal("nil SLO tracker not ready")
	}
	slo.Publish(nil)
	slo.Publish(NewRegistry())

	var rc *RuntimeCollector
	rc.Sample()
	stop := rc.Start(time.Millisecond)
	stop()

	if rc2 := NewRuntimeCollector(nil); rc2 != nil {
		t.Fatal("NewRuntimeCollector(nil) returned a collector")
	}
	if NewSLOTracker(SLOConfig{}) == nil {
		t.Fatal("NewSLOTracker returned nil")
	}
}

func TestTraceBufferRetention(t *testing.T) {
	b := NewTraceBuffer(3, 2)
	for i := 1; i <= 5; i++ {
		b.Record(TraceRecord{TraceID: string(rune('a' + i - 1)), DurNs: int64(i * 100)})
	}
	// One huge outlier late in the stream.
	b.Record(TraceRecord{TraceID: "slowest", DurNs: 10_000})

	recent, slowest := b.Traces()
	if len(recent) != 3 {
		t.Fatalf("recent = %d, want 3", len(recent))
	}
	if recent[0].TraceID != "slowest" || recent[1].TraceID != "e" || recent[2].TraceID != "d" {
		t.Errorf("recent order = %v, want newest first", []string{recent[0].TraceID, recent[1].TraceID, recent[2].TraceID})
	}
	if len(slowest) != 2 {
		t.Fatalf("slowest = %d, want 2", len(slowest))
	}
	if slowest[0].TraceID != "slowest" || slowest[0].DurNs != 10_000 {
		t.Errorf("slowest[0] = %+v, want the 10000ns outlier", slowest[0])
	}
	if slowest[1].DurNs != 500 {
		t.Errorf("slowest[1] = %+v, want the 500ns trace", slowest[1])
	}
	if b.Total() != 6 {
		t.Errorf("total = %d, want 6", b.Total())
	}
}

func TestAccessLogNDJSON(t *testing.T) {
	var buf bytes.Buffer
	al := NewAccessLog(&buf)
	al.Log(AccessEvent{Trace: "t1", Route: "encode", Method: "POST", Status: 200, BytesIn: 10, BytesOut: 20})
	al.Log(AccessEvent{Trace: "t2", Route: "decode", Status: 400, ErrClass: "corrupt"})

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d, want 2", len(lines))
	}
	var e AccessEvent
	if err := json.Unmarshal([]byte(lines[0]), &e); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if e.Trace != "t1" || e.Route != "encode" || e.Status != 200 || e.TimeUnixNano == 0 {
		t.Errorf("event 1 = %+v", e)
	}
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if e.ErrClass != "corrupt" {
		t.Errorf("event 2 err class = %q", e.ErrClass)
	}
}

func TestSLOTrackerBurn(t *testing.T) {
	tr := NewSLOTracker(SLOConfig{
		Window:           10 * time.Second,
		Availability:     0.9, // 10% error budget: easy to burn in a test
		LatencyObjective: 100 * time.Millisecond,
		LatencyTarget:    0.9,
		BurnThreshold:    2,
	})
	// 10 good fast requests: ready.
	for i := 0; i < 10; i++ {
		tr.Observe(time.Millisecond, false)
	}
	if st := tr.Status(); !st.Ready || st.Total != 10 {
		t.Fatalf("healthy status = %+v", st)
	}
	// 10 errors: 50% error rate over a 10% budget = burn 5 >= 2.
	for i := 0; i < 10; i++ {
		tr.Observe(time.Millisecond, true)
	}
	st := tr.Status()
	if st.Ready {
		t.Fatalf("status still ready at burn %.1f: %+v", st.ErrorBurn, st)
	}
	if st.ErrorBurn < 2 {
		t.Errorf("error burn = %v, want >= 2", st.ErrorBurn)
	}

	// Slow-only burn trips the latency objective independently.
	tr2 := NewSLOTracker(SLOConfig{Window: 10 * time.Second, LatencyObjective: time.Millisecond, LatencyTarget: 0.5})
	for i := 0; i < 10; i++ {
		tr2.Observe(time.Second, false)
	}
	if st := tr2.Status(); st.Ready || st.LatencyBurn < 1 {
		t.Fatalf("latency burn not detected: %+v", st)
	}

	// Publish exports counters and gauges.
	reg := NewRegistry()
	tr.Publish(reg)
	if got := reg.Counter("ninecd.slo.observed").Value(); got != 20 {
		t.Errorf("published observed = %d, want 20", got)
	}
	if got := reg.Counter("ninecd.slo.errors").Value(); got != 10 {
		t.Errorf("published errors = %d, want 10", got)
	}
	if reg.Gauge("ninecd.slo.ready").Value() != 0 {
		t.Error("published ready gauge should be 0 while degraded")
	}
	// Publishing twice must not double-count the cumulative counters.
	tr.Publish(reg)
	if got := reg.Counter("ninecd.slo.observed").Value(); got != 20 {
		t.Errorf("re-published observed = %d, want still 20", got)
	}
}

func TestRuntimeCollectorSample(t *testing.T) {
	reg := NewRegistry()
	rc := NewRuntimeCollector(reg)
	rc.Sample()
	if reg.Gauge("runtime.heap_alloc_bytes").Value() == 0 {
		t.Error("heap gauge not sampled")
	}
	if reg.Gauge("runtime.goroutines").Value() == 0 {
		t.Error("goroutine gauge not sampled")
	}
	// The rate limiter makes an immediate second sample a no-op, and
	// Start/stop must not leak the ticker goroutine.
	rc.Sample()
	stop := rc.Start(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
}
