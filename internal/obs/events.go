package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Event is one structured telemetry record. Spans, progress updates,
// and CLI reports (ninec -json) all serialize through this shape, so a
// trace file and a report are parseable by the same consumer.
type Event struct {
	TimeUnixNano int64          `json:"t"`
	Type         string         `json:"type"`
	Name         string         `json:"name"`
	Trace        string         `json:"trace,omitempty"`
	DurNs        int64          `json:"dur_ns,omitempty"`
	SpanID       int64          `json:"span,omitempty"`
	ParentID     int64          `json:"parent,omitempty"`
	Fields       map[string]any `json:"fields,omitempty"`
}

// Sink consumes structured events. Emit may be called concurrently.
type Sink interface {
	Emit(Event)
}

// JSONSink serializes events as newline-delimited JSON (one object per
// line) to a writer, serialized by a mutex so concurrent spans never
// interleave bytes.
type JSONSink struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONSink returns a sink writing NDJSON events to w.
func NewJSONSink(w io.Writer) *JSONSink {
	return &JSONSink{enc: json.NewEncoder(w)}
}

// Emit writes one event line; encoding errors are dropped (telemetry
// must never fail the pipeline it observes).
func (s *JSONSink) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.enc.Encode(e)
}

// FuncSink adapts a function to the Sink interface (handy in tests).
type FuncSink func(Event)

// Emit calls the function.
func (f FuncSink) Emit(e Event) { f(e) }
