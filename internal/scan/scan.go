// Package scan models test application itself: loading fully
// specified scan vectors into the full-scan view, capturing responses,
// and compacting them into a MISR signature — the BIST-side machinery
// from the paper's §I background. It closes the loop for the
// decompression flow: the bits the 9C decoder shifts into the chains
// are applied here and their responses graded or compacted.
package scan

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/lfsr"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/tcube"
)

// Harness applies scan loads to one circuit.
type Harness struct {
	sv  *netlist.ScanView
	sim *logicsim.Sim
}

// NewHarness returns a test-application harness for the scan view.
func NewHarness(sv *netlist.ScanView) *Harness {
	return &Harness{sv: sv, sim: logicsim.New(sv)}
}

// Width returns the scan-load width.
func (h *Harness) Width() int { return h.sv.ScanWidth() }

// ResponseWidth returns the captured-response width (POs + scan cells).
func (h *Harness) ResponseWidth() int { return len(h.sv.PPOs) }

// Apply loads one fully specified vector, pulses capture, and returns
// the response (POs first, then the captured next-state of every scan
// cell, i.e. what the chain would shift out).
func (h *Harness) Apply(load *bitvec.Bits) (*bitvec.Bits, error) {
	out, err := h.sim.Run2([]*bitvec.Bits{load})
	if err != nil {
		return nil, err
	}
	resp := bitvec.NewBits(len(out))
	for i, w := range out {
		resp.Set(i, w&1 == 1)
	}
	return resp, nil
}

// ApplySet applies a fully specified test set and returns every
// response in order.
func (h *Harness) ApplySet(set *tcube.Set) ([]*bitvec.Bits, error) {
	if set.Width() != h.Width() {
		return nil, fmt.Errorf("scan: set width %d != scan width %d", set.Width(), h.Width())
	}
	loads := make([]*bitvec.Bits, set.Len())
	for i := 0; i < set.Len(); i++ {
		b, err := packedLoad(set.Cube(i))
		if err != nil {
			return nil, fmt.Errorf("scan: pattern %d: %w", i, err)
		}
		loads[i] = b
	}
	out := make([]*bitvec.Bits, len(loads))
	for i, l := range loads {
		resp, err := h.Apply(l)
		if err != nil {
			return nil, err
		}
		out[i] = resp
	}
	return out, nil
}

// Signature applies the set and compacts every response into a MISR of
// the given degree (which must be at least the response width).
func (h *Harness) Signature(set *tcube.Set, misrDegree int) (*bitvec.Bits, error) {
	if misrDegree < h.ResponseWidth() {
		return nil, fmt.Errorf("scan: MISR degree %d below response width %d", misrDegree, h.ResponseWidth())
	}
	m, err := lfsr.NewMISR(misrDegree, nil)
	if err != nil {
		return nil, err
	}
	resps, err := h.ApplySet(set)
	if err != nil {
		return nil, err
	}
	for _, r := range resps {
		if err := m.Absorb(r); err != nil {
			return nil, err
		}
	}
	return m.Signature(), nil
}

// BISTRun drives the circuit with patterns pseudo-random patterns from
// the PRPG and returns both the compacted signature and the applied
// loads (for coverage grading). This is the §I baseline whose
// random-pattern-resistant faults motivate deterministic test sets.
func (h *Harness) BISTRun(prpg *lfsr.LFSR, patterns, misrDegree int) (*bitvec.Bits, []*bitvec.Bits, error) {
	if misrDegree < h.ResponseWidth() {
		return nil, nil, fmt.Errorf("scan: MISR degree %d below response width %d", misrDegree, h.ResponseWidth())
	}
	m, err := lfsr.NewMISR(misrDegree, nil)
	if err != nil {
		return nil, nil, err
	}
	loads := make([]*bitvec.Bits, patterns)
	for i := 0; i < patterns; i++ {
		loads[i] = prpg.Pattern(h.Width())
		resp, err := h.Apply(loads[i])
		if err != nil {
			return nil, nil, err
		}
		if err := m.Absorb(resp); err != nil {
			return nil, nil, err
		}
	}
	return m.Signature(), loads, nil
}

// packedLoad converts a fully specified cube to a packed load.
func packedLoad(c *bitvec.Cube) (*bitvec.Bits, error) {
	b := bitvec.NewBits(c.Len())
	for i := 0; i < c.Len(); i++ {
		switch c.Get(i) {
		case bitvec.One:
			b.Set(i, true)
		case bitvec.Zero:
		default:
			return nil, fmt.Errorf("unfilled X at bit %d", i)
		}
	}
	return b, nil
}
