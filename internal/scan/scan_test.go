package scan

import (
	"strings"
	"testing"

	"repro/internal/atpg"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/lfsr"
	"repro/internal/netlist"
	"repro/internal/synth"
	"repro/internal/tcube"
)

const s27 = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
`

func harness(t *testing.T) *Harness {
	t.Helper()
	c, err := netlist.ParseBench("s27", strings.NewReader(s27))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	return NewHarness(sv)
}

func TestHarnessGeometry(t *testing.T) {
	h := harness(t)
	if h.Width() != 7 || h.ResponseWidth() != 4 {
		t.Fatalf("width=%d responses=%d", h.Width(), h.ResponseWidth())
	}
}

func TestApplyKnownResponse(t *testing.T) {
	h := harness(t)
	// G5=1 forces G11=0 so G17 (PPO 0) = 1.
	load := bitvec.NewBits(7)
	load.Set(4, true)
	resp, err := h.Apply(load)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Get(0) {
		t.Fatal("G17 should capture 1")
	}
}

func TestApplySetRejectsXAndWidth(t *testing.T) {
	h := harness(t)
	bad := tcube.NewSet("bad", 7)
	bad.MustAppend(bitvec.NewCube(7)) // all X
	if _, err := h.ApplySet(bad); err == nil {
		t.Fatal("X set accepted")
	}
	narrow := tcube.NewSet("narrow", 5)
	if _, err := h.ApplySet(narrow); err == nil {
		t.Fatal("width mismatch accepted")
	}
}

func TestSignatureDeterministicAndSensitive(t *testing.T) {
	h := harness(t)
	set := tcube.NewSet("sig", 7)
	for _, row := range []string{"1010101", "0110011", "1111000"} {
		c, err := bitvec.ParseCube(row)
		if err != nil {
			t.Fatal(err)
		}
		set.MustAppend(c)
	}
	s1, err := h.Signature(set, 16)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := h.Signature(set, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Equal(s2) {
		t.Fatal("signature not deterministic")
	}
	// Change one load bit: signature changes.
	mut := set.Clone()
	mut.Cube(0).Set(0, bitvec.Zero)
	s3, err := h.Signature(mut, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Equal(s1) {
		t.Fatal("signature insensitive to a load change")
	}
	if _, err := h.Signature(set, 2); err == nil {
		t.Fatal("undersized MISR accepted")
	}
}

// End-to-end: a fully specified set survives 9C encode/decode exactly,
// so its MISR signature is unchanged — while a single tampered stream
// bit changes the signature (failure injection).
func TestSignatureSurvivesCompression(t *testing.T) {
	h := harness(t)
	set := tcube.NewSet("full", 7)
	for _, row := range []string{"1010101", "0110011", "1111000", "0000000", "1111111"} {
		c, _ := bitvec.ParseCube(row)
		set.MustAppend(c)
	}
	golden, err := h.Signature(set, 16)
	if err != nil {
		t.Fatal(err)
	}
	cdc, err := core.New(4)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cdc.EncodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := cdc.DecodeSet(r.Stream, set.Width(), set.Len())
	if err != nil {
		t.Fatal(err)
	}
	got, err := h.Signature(dec, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(golden) {
		t.Fatal("signature changed through lossless compression")
	}

	// Tamper with one shipped data bit (inside a mismatch half so the
	// stream still parses) and check the signature flags it.
	bad := r.Stream.Clone()
	flipped := false
	for i := 0; i < bad.Len() && !flipped; i++ {
		// Flip the LAST bit: it is always inside the final block's data
		// or codeword; retry decode until a parseable tampering found.
		j := bad.Len() - 1 - i
		orig := bad.Get(j)
		if orig == bitvec.X {
			continue
		}
		alt := bitvec.Zero
		if orig == bitvec.Zero {
			alt = bitvec.One
		}
		bad.Set(j, alt)
		if dec2, err := cdc.DecodeSet(bad, set.Width(), set.Len()); err == nil {
			sig2, err := h.Signature(dec2, 16)
			if err != nil {
				t.Fatal(err)
			}
			if sig2.Equal(golden) {
				t.Fatal("tampered stream produced the golden signature")
			}
			flipped = true
		} else {
			bad.Set(j, orig) // tampering broke framing; try another bit
		}
	}
	if !flipped {
		t.Fatal("could not construct a parseable tampered stream")
	}
}

func TestBISTRun(t *testing.T) {
	h := harness(t)
	prpg, err := lfsr.New(16, lfsr.DefaultTaps(16))
	if err != nil {
		t.Fatal(err)
	}
	seed := bitvec.NewBits(16)
	seed.Set(3, true)
	if err := prpg.Seed(seed); err != nil {
		t.Fatal(err)
	}
	sig, loads, err := h.BISTRun(prpg, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(loads) != 32 || sig.Len() != 16 {
		t.Fatalf("loads=%d sig=%d", len(loads), sig.Len())
	}
	ones := 0
	for _, l := range loads {
		ones += l.OnesCount()
	}
	if ones == 0 {
		t.Fatal("PRPG produced all-zero patterns from a nonzero seed")
	}
	if _, _, err := h.BISTRun(prpg, 4, 2); err == nil {
		t.Fatal("undersized MISR accepted")
	}
}

// Integration with the full pipeline: ATPG cubes, filled and graded
// through the harness, must produce identical responses to the
// fault simulator's good machine (they share the logic simulator, so
// this is a consistency check across packages).
func TestHarnessAgainstPipeline(t *testing.T) {
	cs, err := synth.BenchmarkByName("s5378")
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := synth.CircuitProfileFor(cs, 40, 1).Generate()
	if err != nil {
		t.Fatal(err)
	}
	sv, err := ckt.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	h := NewHarness(sv)
	set := tcube.NewSet("x", h.Width())
	c := bitvec.NewCube(h.Width())
	for i := 0; i < c.Len(); i++ {
		c.Set(i, bitvec.Trit(i%2))
	}
	set.MustAppend(c)
	filled := atpg.FillSet(set, 1)
	resps, err := h.ApplySet(filled)
	if err != nil {
		t.Fatal(err)
	}
	if len(resps) != 1 || resps[0].Len() != h.ResponseWidth() {
		t.Fatalf("responses: %d x %d", len(resps), resps[0].Len())
	}
}
