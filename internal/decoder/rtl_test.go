package decoder

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/logicsim"
	"repro/internal/netlist"
)

// rtlRun drives the gate-level decoder with a compressed stream until
// outBits scan bits have been collected, returning the collected bits
// and the cycle budget.
type rtlRunResult struct {
	out        *bitvec.Bits
	ateCycles  int
	scanCycles int
	acks       int
	consumed   int
}

func rtlRun(t *testing.T, ckt *netlist.Circuit, stream *bitvec.Bits, outBits int) rtlRunResult {
	t.Helper()
	sim, err := logicsim.NewSeq(ckt)
	if err != nil {
		t.Fatal(err)
	}
	res := rtlRunResult{out: bitvec.NewBits(outBits)}
	collected := 0
	limit := 4*(stream.Len()+outBits) + 64
	for cycle := 0; collected < outBits; cycle++ {
		if cycle > limit {
			t.Fatalf("gate-level decoder did not finish within %d cycles (%d/%d bits)", limit, collected, outBits)
		}
		sim.Eval()
		rd, err := sim.Value("ate_rd")
		if err != nil {
			t.Fatal(err)
		}
		if rd {
			if res.consumed >= stream.Len() {
				t.Fatalf("decoder demanded bit %d beyond the %d-bit stream", res.consumed, stream.Len())
			}
			if err := sim.SetInput("din", stream.Get(res.consumed)); err != nil {
				t.Fatal(err)
			}
			res.consumed++
			res.ateCycles++
			sim.Eval()
		}
		se, _ := sim.Value("scan_en")
		if se {
			v, _ := sim.Value("dout")
			res.out.Set(collected, v)
			collected++
			res.scanCycles++
		}
		if ack, _ := sim.Value("ack"); ack {
			res.acks++
		}
		sim.Step()
	}
	return res
}

func TestRTLMatchesBehaviouralModel(t *testing.T) {
	for _, k := range []int{2, 4, 8, 16} {
		cdc, err := core.New(k)
		if err != nil {
			t.Fatal(err)
		}
		ckt, err := GenerateRTL(k, cdc.Assignment())
		if err != nil {
			t.Fatal(err)
		}
		if err := ckt.Validate(); err != nil {
			t.Fatal(err)
		}

		rng := rand.New(rand.NewSource(int64(k)))
		flat := bitvec.NewCube(6 * k)
		for i := 0; i < flat.Len(); i++ {
			flat.Set(i, bitvec.Trit(rng.Intn(3)))
		}
		r, err := cdc.EncodeCube(flat)
		if err != nil {
			t.Fatal(err)
		}
		stream := fillStream(t, r.Stream, int64(k))

		// Behavioural reference.
		d, err := NewSingleScan(k, cdc.Assignment())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := d.Run(stream, r.Blocks*r.K)
		if err != nil {
			t.Fatal(err)
		}

		// Gate-level run.
		res := rtlRun(t, ckt, stream, r.Blocks*r.K)
		if !res.out.Equal(tr.Out) {
			t.Fatalf("K=%d: gate-level output differs\nhw: %s\nsw: %s", k, res.out, tr.Out)
		}
		if res.ateCycles != tr.ATECycles || res.scanCycles != tr.ScanCycles {
			t.Fatalf("K=%d: cycles (%d,%d), behavioural (%d,%d)",
				k, res.ateCycles, res.scanCycles, tr.ATECycles, tr.ScanCycles)
		}
		if res.acks != r.Blocks {
			t.Fatalf("K=%d: %d acks for %d blocks", k, res.acks, r.Blocks)
		}
		if res.consumed != stream.Len() {
			t.Fatalf("K=%d: consumed %d of %d stream bits", k, res.consumed, stream.Len())
		}
	}
}

func TestRTLStructuralCost(t *testing.T) {
	a := core.DefaultAssignment()
	ckt8, err := GenerateRTL(8, a)
	if err != nil {
		t.Fatal(err)
	}
	// The control kernel (everything except shifter and counter) is
	// K-independent; total flops grow with K via the shifter.
	ckt64, err := GenerateRTL(64, a)
	if err != nil {
		t.Fatal(err)
	}
	ffs8, ffs64 := len(ckt8.DFFs), len(ckt64.DFFs)
	if ffs64 <= ffs8 {
		t.Fatalf("shifter growth missing: %d vs %d flops", ffs8, ffs64)
	}
	// Shifter (K/2 flops) and counter (log2(K/2) flops) grow with K;
	// the remaining control kernel must not.
	kernel8 := ffs8 - 4 - 2 // minus SH (4) and CNT (2)
	kernel64 := ffs64 - 32 - 5
	if kernel8 != kernel64 {
		t.Fatalf("control kernel flops depend on K: %d vs %d", kernel8, kernel64)
	}
	// Sanity: small machine, tens of gates, comparable to the paper's
	// synthesis claim for the FSM.
	if g := ckt8.NumLogicGates(); g < 40 || g > 400 {
		t.Fatalf("gate count %d outside the expected envelope", g)
	}
	if _, err := GenerateRTL(3, a); err == nil {
		t.Fatal("odd K accepted")
	}
}

func TestRTLFrequencyDirectedAssignment(t *testing.T) {
	// The generator must work for any valid assignment, not just the
	// default: use a frequency-directed permutation.
	var counts core.Counts
	counts.Add(core.CaseMisMis)
	counts.Add(core.CaseMisMis)
	counts.Add(core.CaseAll1)
	a := core.FrequencyDirected(counts)
	cdcFD, err := core.NewWithAssignment(8, a)
	if err != nil {
		t.Fatal(err)
	}
	ckt, err := GenerateRTL(8, a)
	if err != nil {
		t.Fatal(err)
	}
	flat, err := bitvec.ParseCube("01X011011XXXXX100000000011111111")
	if err != nil {
		t.Fatal(err)
	}
	r, err := cdcFD.EncodeCube(flat)
	if err != nil {
		t.Fatal(err)
	}
	stream := fillStream(t, r.Stream, 5)
	d, _ := NewSingleScan(8, a)
	tr, err := d.Run(stream, r.Blocks*r.K)
	if err != nil {
		t.Fatal(err)
	}
	res := rtlRun(t, ckt, stream, r.Blocks*r.K)
	if !res.out.Equal(tr.Out) {
		t.Fatal("frequency-directed RTL output differs from behavioural model")
	}
}

// Property: for random data and assignments, the silicon and the
// software agree bit-for-bit and cycle-for-cycle.
func TestPropertyRTLEquivalence(t *testing.T) {
	type built struct {
		ckt *netlist.Circuit
		cdc *core.Codec
		dec *SingleScan
	}
	cache := map[int]built{}
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := (int(kRaw%4) + 1) * 2 // 2,4,6,8 — keep netlists small
		bl, ok := cache[k]
		if !ok {
			cdc, err := core.New(k)
			if err != nil {
				return false
			}
			ckt, err := GenerateRTL(k, cdc.Assignment())
			if err != nil {
				return false
			}
			dec, err := NewSingleScan(k, cdc.Assignment())
			if err != nil {
				return false
			}
			bl = built{ckt, cdc, dec}
			cache[k] = bl
		}
		n := (int(nRaw%6) + 1) * k
		rng := rand.New(rand.NewSource(seed))
		flat := bitvec.NewCube(n)
		for i := 0; i < n; i++ {
			flat.Set(i, bitvec.Trit(rng.Intn(3)))
		}
		r, err := bl.cdc.EncodeCube(flat)
		if err != nil {
			return false
		}
		filled := r.Stream.FillRandom(rng)
		stream := bitvec.NewBits(filled.Len())
		for i := 0; i < filled.Len(); i++ {
			stream.Set(i, filled.Get(i) == bitvec.One)
		}
		tr, err := bl.dec.Run(stream, r.Blocks*r.K)
		if err != nil {
			return false
		}
		res := rtlRun(t, bl.ckt, stream, r.Blocks*r.K)
		return res.out.Equal(tr.Out) &&
			res.ateCycles == tr.ATECycles &&
			res.scanCycles == tr.ScanCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
