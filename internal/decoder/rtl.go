package decoder

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netlist"
)

// GenerateRTL emits the single-scan 9C decompressor as a gate-level
// netlist in the repository's own IR — the strongest form of the
// paper's "flexible on-chip decompression" claim: the decoder is an
// ordinary circuit, independent of the test set, that the sequential
// simulator can run cycle by cycle against the behavioural model.
//
// Interface (single clock, the p=1 configuration):
//
//	input  din      serial data from the ATE
//	output ate_rd   high when this cycle consumes din
//	output dout     bit shifted into the scan chain
//	output scan_en  high when dout is valid
//	output ack      one-cycle pulse when a K-bit block completes
//
// After reset the machine self-starts: the first clock edge activates
// the codeword-recognition root, so cycle 0 is an idle warm-up.
// Codeword bits arrive one per cycle while ate_rd is high; mismatch
// halves are first received into the K/2-bit shifter (ate_rd high) and
// then emitted (scan_en high), so the cycle budget matches the
// behavioural Trace exactly: ATE cycles = |T_E|, scan cycles = K per
// block.
func GenerateRTL(k int, assign core.Assignment) (*netlist.Circuit, error) {
	return generateRTL(k, 0, assign)
}

// GenerateMultiRTL emits the Fig. 3 multiple-scan-chain decoder: the
// single-scan machine extended with an m-bit staging shifter and a
// log2(m) load counter. Decoded bits shift into the stager on every
// scan_en cycle; when m bits have accumulated, the load output pulses
// and chain0..chain<m-1> present one bit for every chain in parallel —
// still from a single ATE data pin.
func GenerateMultiRTL(k, m int, assign core.Assignment) (*netlist.Circuit, error) {
	if m < 1 {
		return nil, fmt.Errorf("decoder: %d scan chains", m)
	}
	return generateRTL(k, m, assign)
}

func generateRTL(k, m int, assign core.Assignment) (*netlist.Circuit, error) {
	if k < 2 || k%2 != 0 {
		return nil, fmt.Errorf("decoder: block size K=%d must be an even integer >= 2", k)
	}
	if err := assign.Validate(); err != nil {
		return nil, err
	}
	h := k / 2
	name := fmt.Sprintf("ninec_dec_k%d", k)
	if m > 0 {
		name = fmt.Sprintf("ninec_dec_k%d_m%d", k, m)
	}
	r := newRTL(name)
	r.b.AddInput("din")

	one := r.gate(netlist.Xnor, "din", "din")
	zero := r.gate(netlist.Xor, "din", "din")
	ndin := r.gate(netlist.Not, "din")

	// ---- codeword-recognition trie -------------------------------
	type edge struct {
		from string // trie state net
		cond string // din or ~din
	}
	nodes, terms := buildTrie(assign)
	// Only internal nodes become FSM states; terminal nodes are edges
	// into the half-action states.
	trieState := map[int]string{}
	var trieStates []string
	for i, n := range nodes {
		if n.zero >= 0 || n.one >= 0 {
			name := fmt.Sprintf("T%d", len(trieStates))
			trieState[i] = name
			trieStates = append(trieStates, name)
		}
	}
	// Incoming terms per destination state.
	into := map[string][]string{}
	addEdge := func(dst string, e edge) {
		into[dst] = append(into[dst], r.and(e.from, e.cond))
	}
	cond := func(bit byte) string {
		if bit == '1' {
			return "din"
		}
		return ndin
	}
	// Case entry bookkeeping: left action state + right action select.
	type caseEntry struct {
		left  string // HLC0 | HLC1 | HLRX
		rsel1 bool   // right is RX
		rsel0 bool   // right is constant 1
	}
	entryOf := func(cs core.Case) caseEntry {
		e := caseEntry{left: "HLC0"}
		switch cs {
		case core.CaseAll1, core.Case1Then0, core.Case1ThenMis:
			e.left = "HLC1"
		case core.CaseMisThen0, core.CaseMisThen1, core.CaseMisMis:
			e.left = "HLRX"
		}
		switch cs {
		case core.CaseAll1, core.Case0Then1, core.CaseMisThen1:
			e.rsel0 = true
		case core.Case0ThenMis, core.Case1ThenMis, core.CaseMisMis:
			e.rsel1 = true
		}
		return e
	}
	var latchTerms, rsel0Terms, rsel1Terms []string
	for i, n := range nodes {
		for _, br := range []struct {
			bit   byte
			child int
		}{{'0', n.zero}, {'1', n.one}} {
			if br.child < 0 {
				continue
			}
			e := edge{from: trieState[i], cond: cond(br.bit)}
			if cs := terms[br.child]; cs != 0 {
				ce := entryOf(cs)
				t := r.and(e.from, e.cond)
				into[ce.left] = append(into[ce.left], t)
				latchTerms = append(latchTerms, t)
				if ce.rsel0 {
					rsel0Terms = append(rsel0Terms, t)
				}
				if ce.rsel1 {
					rsel1Terms = append(rsel1Terms, t)
				}
			} else {
				addEdge(trieState[br.child], e)
			}
		}
	}

	// ---- counter: paces K/2 cycles per half ----------------------
	nbits := 1
	for 1<<uint(nbits) < h {
		nbits++
	}
	cnt := make([]string, nbits)
	for i := range cnt {
		cnt[i] = fmt.Sprintf("CNT%d", i)
	}
	var done string
	if h == 1 {
		done = one
	} else {
		// done when cnt == h-1.
		var lits []string
		for i := 0; i < nbits; i++ {
			if (h-1)>>uint(i)&1 == 1 {
				lits = append(lits, cnt[i])
			} else {
				lits = append(lits, r.gate(netlist.Not, cnt[i]))
			}
		}
		done = r.and(lits...)
	}
	ndone := r.gate(netlist.Not, done)

	actionStates := []string{"HLC0", "HLC1", "HLRX", "HLTX", "HRC0", "HRC1", "HRRX", "HRTX"}
	active := r.or(actionStates...)

	// Counter increment with synchronous clear on done or idle.
	carry := one
	for i := 0; i < nbits; i++ {
		sum := r.gate(netlist.Xor, cnt[i], carry)
		if i+1 < nbits {
			carry = r.and(cnt[i], carry)
		}
		r.b.AddGate(cnt[i], netlist.DFF, r.and(active, ndone, sum))
	}

	// ---- state register plumbing ---------------------------------
	doneL := r.and(r.or("HLC0", "HLC1", "HLTX"), done)
	doneLRX := r.and("HLRX", done)
	doneR := r.and(r.or("HRC0", "HRC1", "HRTX"), done)
	doneRRX := r.and("HRRX", done)

	nrsel0 := r.gate(netlist.Not, "RSEL0")
	nrsel1 := r.gate(netlist.Not, "RSEL1")
	into["HRC0"] = append(into["HRC0"], r.and(doneL, nrsel1, nrsel0))
	into["HRC1"] = append(into["HRC1"], r.and(doneL, nrsel1, "RSEL0"))
	into["HRRX"] = append(into["HRRX"], r.and(doneL, "RSEL1"))
	into["HLTX"] = append(into["HLTX"], doneLRX)
	into["HRTX"] = append(into["HRTX"], doneRRX)

	// Self-loops while the counter runs.
	for _, s := range actionStates {
		into[s] = append(into[s], r.and(s, ndone))
	}

	// Root re-entry: block completion, or cold start (no state set).
	allStates := append(append([]string{}, trieStates...), actionStates...)
	idle := r.gate(netlist.Nor, allStates...)
	into[trieState[0]] = append(into[trieState[0]], doneR, idle)

	// Materialize every state flip-flop.
	for _, s := range append(append([]string{}, trieStates...), actionStates...) {
		srcs := into[s]
		if len(srcs) == 0 {
			srcs = []string{zero}
		}
		r.b.AddGate(s, netlist.DFF, r.or(srcs...))
	}

	// Right-action select latch: loads on case entry, else holds.
	latch := r.or(latchTerms...)
	nlatch := r.gate(netlist.Not, latch)
	rselIn := func(terms []string, cur string) string {
		newv := zero
		if len(terms) > 0 {
			newv = r.or(terms...)
		}
		return r.or(r.and(latch, newv), r.and(nlatch, cur))
	}
	r.b.AddGate("RSEL0", netlist.DFF, rselIn(rsel0Terms, "RSEL0"))
	r.b.AddGate("RSEL1", netlist.DFF, rselIn(rsel1Terms, "RSEL1"))

	// ---- K/2-bit shifter ------------------------------------------
	shiftEn := r.or("HLRX", "HRRX", "HLTX", "HRTX")
	nshift := r.gate(netlist.Not, shiftEn)
	prev := "din"
	for i := 0; i < h; i++ {
		name := fmt.Sprintf("SH%d", i)
		r.b.AddGate(name, netlist.DFF,
			r.or(r.and(shiftEn, prev), r.and(nshift, name)))
		prev = name
	}
	shTail := fmt.Sprintf("SH%d", h-1)

	// ---- outputs ----------------------------------------------------
	txing := r.or("HLTX", "HRTX")
	r.b.AddGate("scan_en", netlist.Buf, r.or("HLC0", "HLC1", "HRC0", "HRC1", txing))
	r.b.AddGate("dout", netlist.Buf,
		r.or(r.or("HLC1", "HRC1"), r.and(txing, shTail)))
	r.b.AddGate("ate_rd", netlist.Buf, r.or(append([]string{"HLRX", "HRRX"}, trieStates...)...))
	r.b.AddGate("ack", netlist.Buf, doneR)
	for _, o := range []string{"dout", "scan_en", "ate_rd", "ack"} {
		r.b.AddOutput(o)
	}

	if m > 0 {
		r.appendStager(m, one)
	}
	return r.b.Build()
}

// appendStager adds the Fig. 3 m-bit staging shifter, its load
// counter, the load strobe, and the per-chain parallel outputs. The
// first bit of each m-bit slice shifts in first and therefore sits at
// the far end of the stager when load pulses, so chain c reads stager
// cell m-1-c.
func (r *rtl) appendStager(m int, one string) {
	nscan := r.gate(netlist.Not, "scan_en")
	prev := "dout"
	for i := 0; i < m; i++ {
		name := fmt.Sprintf("ST%d", i)
		r.b.AddGate(name, netlist.DFF,
			r.or(r.and("scan_en", prev), r.and(nscan, name)))
		prev = name
	}

	// Load counter: counts scan_en pulses modulo m, holds otherwise.
	nbits := 1
	for 1<<uint(nbits) < m {
		nbits++
	}
	lcnt := make([]string, nbits)
	for i := range lcnt {
		lcnt[i] = fmt.Sprintf("LC%d", i)
	}
	var atMax string
	if m == 1 {
		atMax = one
	} else {
		var lits []string
		for i := 0; i < nbits; i++ {
			if (m-1)>>uint(i)&1 == 1 {
				lits = append(lits, lcnt[i])
			} else {
				lits = append(lits, r.gate(netlist.Not, lcnt[i]))
			}
		}
		atMax = r.and(lits...)
	}
	load := r.and("scan_en", atMax)
	nload := r.gate(netlist.Not, load)
	carry := one
	for i := 0; i < nbits; i++ {
		sum := r.gate(netlist.Xor, lcnt[i], carry)
		if i+1 < nbits {
			carry = r.and(lcnt[i], carry)
		}
		// scan_en & !load: advance; !scan_en: hold; load: clear.
		next := r.or(
			r.and("scan_en", nload, sum),
			r.and(r.gate(netlist.Not, "scan_en"), nload, lcnt[i]),
		)
		r.b.AddGate(lcnt[i], netlist.DFF, next)
	}
	r.b.AddGate("load", netlist.Buf, load)
	r.b.AddOutput("load")
	// Parallel chain view of the stager. The bit just shifted in this
	// cycle (dout) is chain m-1's value; older bits moved one cell up,
	// so at load time chain c reads the combinational shift view.
	for c := 0; c < m; c++ {
		name := fmt.Sprintf("chain%d", c)
		if c == m-1 {
			r.b.AddGate(name, netlist.Buf, "dout")
		} else {
			r.b.AddGate(name, netlist.Buf, fmt.Sprintf("ST%d", m-2-c))
		}
		r.b.AddOutput(name)
	}
}

// rtl is a tiny structural netlist builder with fresh-name management.
type rtl struct {
	b *netlist.Builder
	n int
}

func newRTL(name string) *rtl { return &rtl{b: netlist.NewBuilder(name)} }

func (r *rtl) gate(t netlist.GateType, ins ...string) string {
	name := fmt.Sprintf("w%d", r.n)
	r.n++
	r.b.AddGate(name, t, ins...)
	return name
}

// and builds an AND tree (a single input passes through).
func (r *rtl) and(ins ...string) string {
	if len(ins) == 1 {
		return ins[0]
	}
	return r.gate(netlist.And, ins...)
}

// or builds an OR (a single input passes through).
func (r *rtl) or(ins ...string) string {
	if len(ins) == 1 {
		return ins[0]
	}
	return r.gate(netlist.Or, ins...)
}

// trieNode mirrors the recognition trie for RTL emission.
type trieNode struct{ zero, one int }

// buildTrie flattens the assignment's prefix trie: nodes[i] holds the
// child indices (-1 = none) and terms[j] != 0 marks node j as the
// terminal of that case.
func buildTrie(a core.Assignment) ([]trieNode, map[int]core.Case) {
	nodes := []trieNode{{zero: -1, one: -1}}
	terms := map[int]core.Case{}
	for cs := core.CaseAll0; cs <= core.CaseMisMis; cs++ {
		cur := 0
		code := a.Code(cs)
		for i := 0; i < len(code); i++ {
			var next *int
			if code[i] == '1' {
				next = &nodes[cur].one
			} else {
				next = &nodes[cur].zero
			}
			if *next < 0 {
				idx := len(nodes)
				nodes = append(nodes, trieNode{zero: -1, one: -1})
				// Re-take the pointer: append may have moved the slice.
				if code[i] == '1' {
					nodes[cur].one = idx
				} else {
					nodes[cur].zero = idx
				}
				cur = idx
				continue
			}
			cur = *next
		}
		terms[cur] = cs
	}
	return nodes, terms
}
