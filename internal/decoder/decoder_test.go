package decoder

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/tcube"
)

// fillStream turns a ternary T_E into the fully specified serial
// stream the ATE ships (random fill of leftover don't-cares).
func fillStream(t *testing.T, s *bitvec.Cube, seed int64) *bitvec.Bits {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := s.FillRandom(rng)
	b := bitvec.NewBits(f.Len())
	for i := 0; i < f.Len(); i++ {
		b.Set(i, f.Get(i) == bitvec.One)
	}
	return b
}

func encodeSet(t *testing.T, k int, rows ...string) (*core.Codec, *core.Result, *tcube.Set) {
	t.Helper()
	set, err := tcube.Read("t", strings.NewReader(strings.Join(rows, "\n")))
	if err != nil {
		t.Fatal(err)
	}
	cdc, err := core.New(k)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cdc.EncodeSet(set)
	if err != nil {
		t.Fatal(err)
	}
	return cdc, res, set
}

func TestSingleScanMatchesSoftwareDecode(t *testing.T) {
	cdc, res, _ := encodeSet(t, 8,
		"00000000001111",
		"01X011011XXXXX",
		"XXXXXXXXXXXXXX",
		"10101010101010",
	)
	stream := fillStream(t, res.Stream, 1)
	d, err := NewSingleScan(8, cdc.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	padded := res.Blocks * res.K
	tr, err := d.Run(stream, padded)
	if err != nil {
		t.Fatal(err)
	}
	// Software decode of the same filled stream.
	streamCube := bitvec.NewCube(stream.Len())
	for i := 0; i < stream.Len(); i++ {
		if stream.Get(i) {
			streamCube.Set(i, bitvec.One)
		} else {
			streamCube.Set(i, bitvec.Zero)
		}
	}
	want, err := cdc.DecodeCube(streamCube, padded)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Out.Len() != padded {
		t.Fatalf("out bits = %d, want %d", tr.Out.Len(), padded)
	}
	for i := 0; i < padded; i++ {
		wantBit := want.Get(i) == bitvec.One
		if tr.Out.Get(i) != wantBit {
			t.Fatalf("bit %d: hw=%v sw=%s", i, tr.Out.Get(i), want.Get(i))
		}
	}
	if tr.Counts != res.Counts {
		t.Fatalf("hw counts %v != encoder counts %v", tr.Counts, res.Counts)
	}
}

func TestSingleScanCycleAccounting(t *testing.T) {
	cdc, res, _ := encodeSet(t, 8, "0000000011111111", "01X011011XXXXX10")
	stream := fillStream(t, res.Stream, 2)
	d, _ := NewSingleScan(8, cdc.Assignment())
	padded := res.Blocks * res.K
	tr, err := d.Run(stream, padded)
	if err != nil {
		t.Fatal(err)
	}
	// ATE cycles = every shipped bit (codewords + mismatch data) = |T_E|.
	if tr.ATECycles != res.CompressedBits() {
		t.Fatalf("ATECycles = %d, want %d", tr.ATECycles, res.CompressedBits())
	}
	// Scan cycles = K per block.
	if tr.ScanCycles != res.Blocks*res.K {
		t.Fatalf("ScanCycles = %d, want %d", tr.ScanCycles, res.Blocks*res.K)
	}
	if tr.Acks != res.Blocks {
		t.Fatalf("Acks = %d, want %d", tr.Acks, res.Blocks)
	}
	// Closed-form test time (DESIGN.md §5).
	for _, p := range []int{1, 4, 8, 16} {
		want := float64(res.CompressedBits()) + float64(res.Blocks*res.K)/float64(p)
		if got := tr.TestTimeATE(p); got != want {
			t.Fatalf("p=%d: TestTimeATE = %v, want %v", p, got, want)
		}
	}
}

func TestSingleScanErrors(t *testing.T) {
	cdc, res, _ := encodeSet(t, 8, "0101010101010101")
	stream := fillStream(t, res.Stream, 3)
	d, _ := NewSingleScan(8, cdc.Assignment())
	if _, err := d.Run(stream, 12); err == nil {
		t.Fatal("non-multiple outBits accepted")
	}
	if _, err := d.Run(stream, -8); err == nil {
		t.Fatal("negative outBits accepted")
	}
	// Truncated stream.
	short := bitvec.NewBits(stream.Len() - 1)
	for i := 0; i < short.Len(); i++ {
		short.Set(i, stream.Get(i))
	}
	if _, err := d.Run(short, res.Blocks*res.K); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Trailing bits.
	long := bitvec.NewBits(stream.Len() + 1)
	for i := 0; i < stream.Len(); i++ {
		long.Set(i, stream.Get(i))
	}
	if _, err := d.Run(long, res.Blocks*res.K); err == nil {
		t.Fatal("trailing bits accepted")
	}
	if _, err := NewSingleScan(7, cdc.Assignment()); err == nil {
		t.Fatal("odd K accepted")
	}
}

func TestFSMAtMostFiveCyclesPerCodeword(t *testing.T) {
	// The recognition depth equals the longest codeword: 5.
	a := core.DefaultAssignment()
	maxLen := 0
	for cs := core.CaseAll0; cs <= core.CaseMisMis; cs++ {
		if l := a.Len(cs); l > maxLen {
			maxLen = l
		}
	}
	if maxLen != 5 {
		t.Fatalf("max codeword length = %d, want 5", maxLen)
	}
	if s := FSMStates(a); s != 8 {
		// A complete binary prefix code over 9 leaves has 8 internal nodes.
		t.Fatalf("FSM recognition states = %d, want 8", s)
	}
}

func TestMultiScanEquivalence(t *testing.T) {
	// Multi-scan with one pin must cost exactly the same cycles as
	// single-scan and reassemble the per-chain data correctly.
	width := 24
	m := 4
	set := tcube.NewSet("ms", width)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		c := bitvec.NewCube(width)
		for j := 0; j < width; j++ {
			c.Set(j, bitvec.Trit(rng.Intn(3)))
		}
		set.MustAppend(c)
	}
	vert, err := tcube.Verticalize(set, m)
	if err != nil {
		t.Fatal(err)
	}
	cdc, _ := core.New(8)
	res, err := cdc.EncodeSet(vert)
	if err != nil {
		t.Fatal(err)
	}
	stream := fillStream(t, res.Stream, 4)

	single, _ := NewSingleScan(8, cdc.Assignment())
	multi, err := NewMultiScan(8, m, cdc.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	padded := res.Blocks * res.K
	st, err := single.Run(stream, padded)
	if err != nil {
		t.Fatal(err)
	}
	mt, err := multi.Run(stream, padded)
	if err != nil {
		t.Fatal(err)
	}
	if mt.ATECycles != st.ATECycles || mt.ScanCycles != st.ScanCycles {
		t.Fatalf("multi cycles (%d,%d) != single (%d,%d)",
			mt.ATECycles, mt.ScanCycles, st.ATECycles, st.ScanCycles)
	}
	if mt.Pins != 1 {
		t.Fatalf("pins = %d", mt.Pins)
	}
	if mt.Loads != padded/m {
		t.Fatalf("loads = %d, want %d", mt.Loads, padded/m)
	}
	// Chain c, slice t must equal vertical stream bit t*m+c.
	for c := 0; c < m; c++ {
		for ti := 0; ti < padded/m; ti++ {
			if mt.Chains[c].Get(ti) != st.Out.Get(ti*m+c) {
				t.Fatalf("chain %d bit %d mismatch", c, ti)
			}
		}
	}
}

func TestMultiScanErrors(t *testing.T) {
	a := core.DefaultAssignment()
	if _, err := NewMultiScan(8, 0, a); err == nil {
		t.Fatal("m=0 accepted")
	}
	d, _ := NewMultiScan(8, 3, a)
	if _, err := d.Run(bitvec.NewBits(0), 8); err == nil {
		t.Fatal("outBits not divisible by m accepted")
	}
}

func TestParallelBank(t *testing.T) {
	a := core.DefaultAssignment()
	if _, err := NewParallelBank(8, 12, a); err == nil {
		t.Fatal("m not multiple of K accepted")
	}
	b, err := NewParallelBank(8, 16, a)
	if err != nil {
		t.Fatal(err)
	}
	if b.Decoders() != 2 {
		t.Fatalf("decoders = %d", b.Decoders())
	}
	// Two groups with different stream sizes: time = slowest.
	cdc, _ := core.New(8)
	mk := func(rows ...string) *bitvec.Bits {
		set, err := tcube.Read("g", strings.NewReader(strings.Join(rows, "\n")))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cdc.EncodeSet(set)
		if err != nil {
			t.Fatal(err)
		}
		return fillStream(t, res.Stream, 5)
	}
	s1 := mk("0000000000000000") // compresses well
	s2 := mk("0110100101101001") // mismatch-heavy
	bt, err := b.Run([]*bitvec.Bits{s1, s2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Pins != 2 || len(bt.PerDecoder) != 2 {
		t.Fatalf("bank shape: %+v", bt)
	}
	t1 := bt.PerDecoder[0].TestTimeATE(8)
	t2 := bt.PerDecoder[1].TestTimeATE(8)
	want := t1
	if t2 > want {
		want = t2
	}
	if got := bt.TestTimeATE(8); got != want {
		t.Fatalf("bank time %v, want max(%v,%v)", got, t1, t2)
	}
	if _, err := b.Run([]*bitvec.Bits{s1}, 16); err == nil {
		t.Fatal("wrong stream count accepted")
	}
}

func TestEstimateCost(t *testing.T) {
	a := core.DefaultAssignment()
	h8, err := EstimateCost(8, 0, a)
	if err != nil {
		t.Fatal(err)
	}
	if h8.FSMStates != 12 { // 8 recognition + 4 control
		t.Fatalf("FSM states = %d", h8.FSMStates)
	}
	// The paper synthesized the FSM to roughly forty gates; the model
	// should land in that neighbourhood.
	if h8.FSMGates < 20 || h8.FSMGates > 80 {
		t.Fatalf("FSM gate estimate %d outside sane band", h8.FSMGates)
	}
	// Datapath grows with K, FSM does not.
	h32, _ := EstimateCost(32, 0, a)
	if h32.FSMGates != h8.FSMGates || h32.FSMStates != h8.FSMStates {
		t.Fatal("FSM cost should be K-independent")
	}
	if h32.ShifterFlops <= h8.ShifterFlops || h32.TotalFlops() <= h8.TotalFlops() {
		t.Fatal("datapath cost should grow with K")
	}
	// Multi-scan adds the stager.
	hm, _ := EstimateCost(8, 16, a)
	if hm.StagerFlops != 16 || hm.TotalFlops() <= h8.TotalFlops() {
		t.Fatalf("stager cost missing: %+v", hm)
	}
	if _, err := EstimateCost(5, 0, a); err == nil {
		t.Fatal("odd K accepted")
	}
	if h8.String() == "" || h8.TotalGates() <= 0 {
		t.Fatal("cost rendering broken")
	}
}

// Property: for random data, the hardware model and software decoder
// agree bit-for-bit and the cycle model matches the closed form.
func TestPropertyHardwareSoftwareEquivalence(t *testing.T) {
	f := func(seed int64, kRaw, nRaw uint8) bool {
		k := (int(kRaw%8) + 1) * 2
		n := (int(nRaw%10) + 1) * k
		rng := rand.New(rand.NewSource(seed))
		flat := bitvec.NewCube(n)
		for i := 0; i < n; i++ {
			flat.Set(i, bitvec.Trit(rng.Intn(3)))
		}
		cdc, err := core.New(k)
		if err != nil {
			return false
		}
		res, err := cdc.EncodeCube(flat)
		if err != nil {
			return false
		}
		filled := res.Stream.FillRandom(rng)
		stream := bitvec.NewBits(filled.Len())
		streamCube := bitvec.NewCube(filled.Len())
		for i := 0; i < filled.Len(); i++ {
			one := filled.Get(i) == bitvec.One
			stream.Set(i, one)
			if one {
				streamCube.Set(i, bitvec.One)
			} else {
				streamCube.Set(i, bitvec.Zero)
			}
		}
		d, err := NewSingleScan(k, cdc.Assignment())
		if err != nil {
			return false
		}
		tr, err := d.Run(stream, n)
		if err != nil {
			return false
		}
		sw, err := cdc.DecodeCube(streamCube, n)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if tr.Out.Get(i) != (sw.Get(i) == bitvec.One) {
				return false
			}
		}
		return tr.ATECycles == res.CompressedBits() &&
			tr.ScanCycles == res.Blocks*res.K &&
			tr.Counts == res.Counts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
