package decoder

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/core"
)

// MultiScan is the Fig. 3 architecture: one ATE pin and one decoder
// feed m parallel scan chains through an m-bit staging shifter. Every
// decoded bit shifts into the stager (one scan cycle, exactly as it
// would shift into a single chain); whenever m bits have accumulated
// the stager broadcasts one bit into each of the m chains in parallel,
// so the total cycle count is unchanged from the single-scan decoder
// while the ATE pin count stays at one — the paper's reduced pin-count
// testing claim.
type MultiScan struct {
	single *SingleScan
	m      int
}

// NewMultiScan builds the decoder for block size k and m chains.
func NewMultiScan(k, m int, assign core.Assignment) (*MultiScan, error) {
	if m < 1 {
		return nil, fmt.Errorf("decoder: %d scan chains", m)
	}
	s, err := NewSingleScan(k, assign)
	if err != nil {
		return nil, err
	}
	return &MultiScan{single: s, m: m}, nil
}

// MultiTrace extends Trace with the per-chain view.
type MultiTrace struct {
	Trace
	// Chains[c] is the bit sequence loaded into chain c, in shift order.
	Chains []*bitvec.Bits
	// Loads counts parallel load strobes from the stager into the chains.
	Loads int
	// Pins is the number of ATE data pins used (1 for Fig. 3).
	Pins int
}

// Run decompresses a vertically encoded stream (see
// tcube.VerticalReshape) for m chains. outBits must be a multiple of
// both K and m.
func (d *MultiScan) Run(stream *bitvec.Bits, outBits int) (*MultiTrace, error) {
	if outBits%d.m != 0 {
		return nil, fmt.Errorf("decoder: %d bits do not divide over %d chains", outBits, d.m)
	}
	tr, err := d.single.Run(stream, outBits)
	if err != nil {
		return nil, err
	}
	mt := &MultiTrace{Trace: *tr, Pins: 1}
	per := outBits / d.m
	mt.Chains = make([]*bitvec.Bits, d.m)
	for c := range mt.Chains {
		mt.Chains[c] = bitvec.NewBits(per)
	}
	// The serial order is the vertical order: slice t delivers bit t of
	// every chain.
	for t := 0; t < per; t++ {
		for c := 0; c < d.m; c++ {
			mt.Chains[c].Set(t, tr.Out.Get(t*d.m+c))
		}
		mt.Loads++
	}
	return mt, nil
}

// ParallelBank is the Fig. 4(c) architecture: m scan chains split into
// groups of K chains, one decoder and one ATE pin per group, all
// groups operating concurrently. Test time drops by the factor m/K
// (the number of decoders) relative to the single-pin architecture.
type ParallelBank struct {
	k, m, decoders int
	assign         core.Assignment
}

// NewParallelBank builds the bank. m must be a multiple of k so the
// chains divide evenly into K-wide groups (the paper's configuration).
func NewParallelBank(k, m int, assign core.Assignment) (*ParallelBank, error) {
	if m < 1 || m%k != 0 {
		return nil, fmt.Errorf("decoder: %d chains not divisible into K=%d groups", m, k)
	}
	if _, err := NewSingleScan(k, assign); err != nil {
		return nil, err
	}
	return &ParallelBank{k: k, m: m, decoders: m / k, assign: assign}, nil
}

// Decoders returns the number of decoder instances (= ATE pins).
func (b *ParallelBank) Decoders() int { return b.decoders }

// BankTrace records a parallel-bank run.
type BankTrace struct {
	// PerDecoder holds each decoder group's trace.
	PerDecoder []*MultiTrace
	// Pins is the ATE pin count (= decoder count).
	Pins int
}

// TestTimeATE is the bank's wall-clock test time: the slowest group,
// since groups run concurrently from independent pins.
func (t *BankTrace) TestTimeATE(p int) float64 {
	worst := 0.0
	for _, d := range t.PerDecoder {
		if v := d.TestTimeATE(p); v > worst {
			worst = v
		}
	}
	return worst
}

// Run decompresses per-group streams. streams[g] is the compressed
// stream for decoder group g; outBits is the per-group scan volume
// (multiple of K).
func (b *ParallelBank) Run(streams []*bitvec.Bits, outBits int) (*BankTrace, error) {
	if len(streams) != b.decoders {
		return nil, fmt.Errorf("decoder: %d streams for %d decoders", len(streams), b.decoders)
	}
	bt := &BankTrace{Pins: b.decoders}
	for g, s := range streams {
		ms, err := NewMultiScan(b.k, b.k, b.assign)
		if err != nil {
			return nil, err
		}
		tr, err := ms.Run(s, outBits)
		if err != nil {
			return nil, fmt.Errorf("decoder: group %d: %w", g, err)
		}
		bt.PerDecoder = append(bt.PerDecoder, tr)
	}
	return bt, nil
}
