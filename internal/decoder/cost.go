package decoder

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// HardwareCost estimates the decompressor's silicon budget in
// flip-flops and two-input-gate equivalents. The paper reports the FSM
// alone at roughly forty gates after Synopsys Design Compiler
// synthesis; this model reproduces that figure from first principles
// (DESIGN.md §4, substitution 4) and extends it to the K-dependent
// datapath so the cost side of the paper's "nine codes are the sweet
// spot" trade-off can be quantified.
type HardwareCost struct {
	FSMStates    int // codeword-recognition states
	FSMFlops     int // state register bits
	FSMGates     int // 2-input gate equivalents for next-state+output logic
	ShifterFlops int // K/2-bit input shifter
	CounterFlops int // log2(K/2) counter
	CounterGates int // increment + terminal-count logic
	MuxGates     int // 3-way output multiplexer
	StagerFlops  int // m-bit stager (multi-scan only; 0 otherwise)
}

// TotalFlops sums all storage elements.
func (h HardwareCost) TotalFlops() int {
	return h.FSMFlops + h.ShifterFlops + h.CounterFlops + h.StagerFlops
}

// TotalGates sums all combinational gate equivalents.
func (h HardwareCost) TotalGates() int {
	return h.FSMGates + h.CounterGates + h.MuxGates
}

// String renders a one-line summary.
func (h HardwareCost) String() string {
	return fmt.Sprintf("FSM: %d states / %d FF / %d gates; datapath: %d FF / %d gates",
		h.FSMStates, h.FSMFlops, h.FSMGates,
		h.ShifterFlops+h.CounterFlops+h.StagerFlops, h.CounterGates+h.MuxGates)
}

// log2ceil returns ceil(log2(n)) with log2ceil(1) == 1 (a 1-entry
// counter still needs one bit).
func log2ceil(n int) int {
	if n <= 2 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// EstimateCost models the Fig. 1 single-scan decoder for block size k
// (chains == 0) or the Fig. 3 multi-scan decoder for the given chain
// count.
func EstimateCost(k, chains int, a core.Assignment) (HardwareCost, error) {
	if k < 2 || k%2 != 0 {
		return HardwareCost{}, fmt.Errorf("decoder: block size K=%d must be an even integer >= 2", k)
	}
	if err := a.Validate(); err != nil {
		return HardwareCost{}, err
	}
	var h HardwareCost
	// Recognition states plus the per-half emit/receive control states
	// of Fig. 2 (receive-left, receive-right, emit, ack).
	h.FSMStates = FSMStates(a) + 4
	h.FSMFlops = log2ceil(h.FSMStates)
	// Next-state and output logic: with binary encoding, each state bit
	// needs a sum of products over (state bits + serial data input).
	// Literal-count model: transitions × (flops+1) AND-literals folded
	// into 2-input equivalents, plus one gate per distinct Moore output
	// (Sel0, Sel1, Cnt_en, Inc, Shift_en, scan_en, Ack, Dec_en ack).
	transitions := 2 * h.FSMStates // 0/1 successor per state upper bound
	h.FSMGates = transitions*(h.FSMFlops+1)/3 + 8
	h.ShifterFlops = k / 2
	h.CounterFlops = log2ceil(k / 2)
	// Ripple increment (half-adder per bit) + terminal-count AND tree.
	h.CounterGates = 2*h.CounterFlops + (h.CounterFlops - 1)
	if h.CounterFlops == 1 {
		h.CounterGates = 2
	}
	// 3:1 mux built from two 2:1 muxes, ~3 gate equivalents each.
	h.MuxGates = 6
	if chains > 0 {
		h.StagerFlops = chains
		// One extra log2(m/k) counter for the stager's load strobe.
		h.CounterFlops += log2ceil(maxInt(chains/k, 2))
		h.CounterGates += 2 * log2ceil(maxInt(chains/k, 2))
	}
	return h, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
