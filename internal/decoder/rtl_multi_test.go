package decoder

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/logicsim"
	"repro/internal/tcube"
)

// TestMultiRTLMatchesModel drives the gate-level Fig. 3 decoder and
// checks every parallel load against the behavioural MultiScan model.
func TestMultiRTLMatchesModel(t *testing.T) {
	const (
		k = 8
		m = 4
	)
	cdc, err := core.New(k)
	if err != nil {
		t.Fatal(err)
	}
	// Vertical-encoded workload: 5 patterns of 24 bits over 4 chains.
	rng := rand.New(rand.NewSource(2))
	set := tcube.NewSet("m", 24)
	for i := 0; i < 5; i++ {
		c := bitvec.NewCube(24)
		for j := 0; j < 24; j++ {
			c.Set(j, bitvec.Trit(rng.Intn(3)))
		}
		set.MustAppend(c)
	}
	vert, err := tcube.Verticalize(set, m)
	if err != nil {
		t.Fatal(err)
	}
	r, err := cdc.EncodeSet(vert)
	if err != nil {
		t.Fatal(err)
	}
	stream := fillStream(t, r.Stream, 6)
	outBits := r.Blocks * r.K

	ms, err := NewMultiScan(k, m, cdc.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	want, err := ms.Run(stream, outBits)
	if err != nil {
		t.Fatal(err)
	}

	ckt, err := GenerateMultiRTL(k, m, cdc.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	sim, err := logicsim.NewSeq(ckt)
	if err != nil {
		t.Fatal(err)
	}
	chains := make([]*bitvec.Bits, m)
	for c := range chains {
		chains[c] = bitvec.NewBits(outBits / m)
	}
	loads, consumed, collected := 0, 0, 0
	limit := 4*(stream.Len()+outBits) + 64
	for cycle := 0; collected < outBits; cycle++ {
		if cycle > limit {
			t.Fatalf("stalled at %d/%d bits", collected, outBits)
		}
		sim.Eval()
		if rd, _ := sim.Value("ate_rd"); rd {
			if consumed >= stream.Len() {
				t.Fatalf("demanded bit beyond stream")
			}
			if err := sim.SetInput("din", stream.Get(consumed)); err != nil {
				t.Fatal(err)
			}
			consumed++
			sim.Eval()
		}
		if se, _ := sim.Value("scan_en"); se {
			collected++
		}
		if ld, _ := sim.Value("load"); ld {
			for c := 0; c < m; c++ {
				v, err := sim.Value(fmt.Sprintf("chain%d", c))
				if err != nil {
					t.Fatal(err)
				}
				chains[c].Set(loads, v)
			}
			loads++
		}
		sim.Step()
	}
	if loads != want.Loads {
		t.Fatalf("loads = %d, want %d", loads, want.Loads)
	}
	for c := 0; c < m; c++ {
		if !chains[c].Equal(want.Chains[c]) {
			t.Fatalf("chain %d mismatch:\nhw: %s\nsw: %s", c, chains[c], want.Chains[c])
		}
	}
	if consumed != stream.Len() {
		t.Fatalf("consumed %d of %d", consumed, stream.Len())
	}
}

func TestMultiRTLValidation(t *testing.T) {
	a := core.DefaultAssignment()
	if _, err := GenerateMultiRTL(8, 0, a); err == nil {
		t.Fatal("m=0 accepted")
	}
	if _, err := GenerateMultiRTL(7, 4, a); err == nil {
		t.Fatal("odd K accepted")
	}
	// m=1 degenerates to a per-cycle load.
	ckt, err := GenerateMultiRTL(4, 1, a)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ckt.GateByName("load"); !ok {
		t.Fatal("load output missing")
	}
	if _, ok := ckt.GateByName("chain0"); !ok {
		t.Fatal("chain0 output missing")
	}
}
