package faultsim

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestCampaignCtxCanceled asserts a canceled context aborts both the
// serial and parallel campaigns with ctx.Err() and no partial coverage.
func TestCampaignCtxCanceled(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	faults := Collapse(c)
	rng := rand.New(rand.NewSource(5))
	set := randomSpecifiedSet(rng, 130, sv.ScanWidth())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	cov, err := NewSimulator(sv).CampaignCtx(ctx, set, faults)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("serial: err %v, want context.Canceled", err)
	}
	if cov.Detected != 0 || cov.FirstDetectedBy != nil {
		t.Fatalf("serial: partial coverage survived cancellation: %+v", cov)
	}

	cov, err = CampaignParallelCtx(ctx, sv, set, faults, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("parallel: err %v, want context.Canceled", err)
	}
	if cov.Detected != 0 || cov.FirstDetectedBy != nil {
		t.Fatalf("parallel: partial coverage survived cancellation: %+v", cov)
	}
}

// TestCampaignCtxIdentical asserts an uncanceled cancellable context
// produces the same coverage as the context-free campaign.
func TestCampaignCtxIdentical(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	faults := Collapse(c)
	rng := rand.New(rand.NewSource(6))
	set := randomSpecifiedSet(rng, 150, sv.ScanWidth())

	plain, err := NewSimulator(sv).Campaign(set, faults)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx, err := NewSimulator(sv).CampaignCtx(ctx, set, faults)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Detected != withCtx.Detected || plain.Total != withCtx.Total {
		t.Fatalf("coverage differs: %+v vs %+v", plain, withCtx)
	}
	for i := range plain.FirstDetectedBy {
		if plain.FirstDetectedBy[i] != withCtx.FirstDetectedBy[i] {
			t.Fatalf("fault %d: first pattern %d vs %d", i, plain.FirstDetectedBy[i], withCtx.FirstDetectedBy[i])
		}
	}
	par, err := CampaignParallelCtx(ctx, sv, set, faults, 3)
	if err != nil {
		t.Fatal(err)
	}
	if par.Detected != plain.Detected {
		t.Fatalf("parallel ctx coverage %d, want %d", par.Detected, plain.Detected)
	}
}

// TestCampaignWorkerPanicContained injects a panic into one campaign
// worker and asserts it is recovered into an error with the partial
// coverage discarded.
func TestCampaignWorkerPanicContained(t *testing.T) {
	campaignWorkerHook = func(worker int) {
		if worker == 1 {
			panic("injected")
		}
	}
	defer func() { campaignWorkerHook = nil }()
	c, sv := circuit(t, s27, "s27")
	faults := Collapse(c)
	rng := rand.New(rand.NewSource(7))
	set := randomSpecifiedSet(rng, 64, sv.ScanWidth())
	cov, err := CampaignParallelCtx(context.Background(), sv, set, faults, 4)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err %v, want recovered worker panic", err)
	}
	if cov.Detected != 0 {
		t.Fatalf("partial coverage survived worker panic: %+v", cov)
	}
}
