package faultsim

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bitvec"
	"repro/internal/netlist"
)

const s27 = `
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
`

func circuit(t *testing.T, src, name string) (*netlist.Circuit, *netlist.ScanView) {
	t.Helper()
	c, err := netlist.ParseBench(name, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	return c, sv
}

func TestUniverseAndCollapseCounts(t *testing.T) {
	c, _ := circuit(t, s27, "s27")
	u := Universe(c)
	col := Collapse(c)
	// Universe: 2 faults per gate output + 2 per input pin.
	pins := 0
	for _, g := range c.Gates {
		pins += len(g.Fanin)
	}
	if want := 2 * (c.NumGates() + pins); len(u) != want {
		t.Fatalf("universe = %d, want %d", len(u), want)
	}
	if len(col) >= len(u) {
		t.Fatalf("collapse did not shrink: %d >= %d", len(col), len(u))
	}
	// All collapsed faults must exist in the universe.
	seen := map[Fault]bool{}
	for _, f := range u {
		seen[f] = true
	}
	for _, f := range col {
		if !seen[f] {
			t.Fatalf("collapsed fault %v not in universe", f)
		}
	}
}

func TestFaultString(t *testing.T) {
	c, _ := circuit(t, s27, "s27")
	f := Fault{Gate: 0, Pin: -1, StuckAt: true}
	if !strings.Contains(f.String(), "s-a-1") {
		t.Fatalf("String = %q", f.String())
	}
	g, _ := c.GateByName("G8")
	in := Fault{Gate: g.ID, Pin: 0, StuckAt: false}
	if n := in.Name(c); !strings.Contains(n, "G8.") || !strings.Contains(n, "s-a-0") {
		t.Fatalf("Name = %q", n)
	}
	if n := f.Name(c); !strings.Contains(n, "s-a-1") {
		t.Fatalf("Name = %q", n)
	}
}

func TestDetectsSimpleAnd(t *testing.T) {
	// Y = AND(A,B): exhaustively known detection masks.
	_, sv := circuit(t, "INPUT(A)\nINPUT(B)\nOUTPUT(Y)\nY = AND(A, B)\n", "and2")
	s := NewSimulator(sv)
	loads := make([]*bitvec.Bits, 4)
	for p := 0; p < 4; p++ {
		l := bitvec.NewBits(2)
		l.Set(0, p&1 != 0) // A
		l.Set(1, p&2 != 0) // B
		loads[p] = l
	}
	if err := s.LoadBatch(loads); err != nil {
		t.Fatal(err)
	}
	y, _ := sv.Circuit.GateByName("Y")
	a, _ := sv.Circuit.GateByName("A")
	cases := []struct {
		f    Fault
		want uint64
	}{
		// Y good values per pattern p(A,B): p0=00:0 p1=10:0 p2=01:0 p3=11:1.
		{Fault{Gate: y.ID, Pin: -1, StuckAt: false}, 0b1000}, // only 11 sees 1->0
		{Fault{Gate: y.ID, Pin: -1, StuckAt: true}, 0b0111},
		{Fault{Gate: y.ID, Pin: 0, StuckAt: true}, 0b0100},  // A s-a-1 at pin: detected when A=0,B=1
		{Fault{Gate: a.ID, Pin: -1, StuckAt: true}, 0b0100}, // stem same here
		{Fault{Gate: a.ID, Pin: -1, StuckAt: false}, 0b1000},
	}
	for _, tc := range cases {
		got, err := s.Detects(tc.f)
		if err != nil {
			t.Fatalf("%v: %v", tc.f, err)
		}
		if got != tc.want {
			t.Errorf("%v: mask %04b, want %04b", tc.f, got, tc.want)
		}
	}
}

func TestDetectsBeforeLoadErrors(t *testing.T) {
	_, sv := circuit(t, s27, "s27")
	s := NewSimulator(sv)
	if _, err := s.Detects(Fault{Gate: 0, Pin: -1}); !errors.Is(err, ErrNoBatch) {
		t.Fatalf("err %v, want ErrNoBatch", err)
	}
}

// naiveDetects re-simulates pattern-by-pattern with full evaluation,
// serving as the reference model for the event-driven engine.
func naiveDetects(sv *netlist.ScanView, loads []*bitvec.Bits, f Fault) uint64 {
	c := sv.Circuit
	var mask uint64
	for p, load := range loads {
		good := naiveEval(sv, load, Fault{Gate: -1})
		bad := naiveEval(sv, load, f)
		for i, id := range sv.PPOs {
			gv, bv := good[id], bad[id]
			// DFF pin faults corrupt only the observed capture value.
			if f.Gate >= 0 && c.Gates[f.Gate].Type == netlist.DFF && f.Pin == 0 &&
				id == c.Gates[f.Gate].Fanin[0] && i >= len(c.Outputs) {
				bv = f.StuckAt
			}
			if gv != bv {
				mask |= 1 << uint(p)
				break
			}
		}
	}
	return mask
}

func naiveEval(sv *netlist.ScanView, load *bitvec.Bits, f Fault) []bool {
	c := sv.Circuit
	val := make([]bool, c.NumGates())
	for i, id := range sv.PPIs {
		val[id] = load.Get(i)
	}
	for _, id := range sv.Order {
		g := &c.Gates[id]
		if g.Type != netlist.Input && g.Type != netlist.DFF {
			in := func(pin int) bool {
				if f.Gate == id && f.Pin == pin {
					return f.StuckAt
				}
				return val[g.Fanin[pin]]
			}
			var v bool
			switch g.Type {
			case netlist.Buf:
				v = in(0)
			case netlist.Not:
				v = !in(0)
			case netlist.And, netlist.Nand:
				v = true
				for pin := range g.Fanin {
					v = v && in(pin)
				}
				if g.Type == netlist.Nand {
					v = !v
				}
			case netlist.Or, netlist.Nor:
				for pin := range g.Fanin {
					v = v || in(pin)
				}
				if g.Type == netlist.Nor {
					v = !v
				}
			case netlist.Xor, netlist.Xnor:
				for pin := range g.Fanin {
					v = v != in(pin)
				}
				if g.Type == netlist.Xnor {
					v = !v
				}
			}
			val[id] = v
		}
		if f.Gate == id && f.Pin == -1 {
			val[id] = f.StuckAt
		}
	}
	return val
}

// Property: the event-driven engine agrees with the naive reference on
// s27 for every fault in the universe and random batches.
func TestPropertyDetectsMatchesNaive(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	s := NewSimulator(sv)
	faults := Universe(c)
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%8) + 1
		rng := rand.New(rand.NewSource(seed))
		loads := make([]*bitvec.Bits, n)
		for i := range loads {
			b := bitvec.NewBits(sv.ScanWidth())
			for j := 0; j < b.Len(); j++ {
				b.Set(j, rng.Intn(2) == 1)
			}
			loads[i] = b
		}
		if err := s.LoadBatch(loads); err != nil {
			return false
		}
		for _, flt := range faults {
			// DFF pin faults on PPO observation: naive handles the DFF
			// input pin specially only for the capture PPO; skip cases
			// where the DFF fanin also drives a real PO to keep the
			// reference simple (none exist in s27, but be safe).
			got, err := s.Detects(flt)
			if err != nil {
				t.Logf("fault %v: %v", flt, err)
				return false
			}
			if want := naiveDetects(sv, loads, flt); got != want {
				t.Logf("fault %v: got %b want %b", flt, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCampaignOnS27(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	s := NewSimulator(sv)
	faults := Collapse(c)

	// 200 random fully specified patterns should reach high coverage.
	rng := rand.New(rand.NewSource(3))
	set := randomSpecifiedSet(rng, 200, sv.ScanWidth())
	cov, err := s.Campaign(set, faults)
	if err != nil {
		t.Fatal(err)
	}
	if cov.Total != len(faults) || cov.Detected > cov.Total {
		t.Fatalf("bad coverage accounting: %+v", cov)
	}
	if cov.Percent() < 95 {
		t.Fatalf("coverage %.1f%% too low for exhaustive-ish random test", cov.Percent())
	}
	for i, first := range cov.FirstDetectedBy {
		if first >= set.Len() {
			t.Fatalf("fault %d first-detected index %d out of range", i, first)
		}
	}
}

func TestCampaignRejectsXPatterns(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	s := NewSimulator(sv)
	set := tcubeSetWithX(sv.ScanWidth())
	if _, err := s.Campaign(set, Collapse(c)); err == nil {
		t.Fatal("X pattern accepted")
	}
}

func TestCoveragePercentEmpty(t *testing.T) {
	var cov Coverage
	if cov.Percent() != 0 {
		t.Fatal("empty coverage should be 0%")
	}
}
