package faultsim

import (
	"fmt"
	mathbits "math/bits"
	"runtime"
	"sync"

	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/tcube"
)

// Batch is one precomputed good-machine batch: up to 64 fully
// specified scan loads simulated fault-free, stored as the value of
// every gate with bit p carrying pattern p. Batches are immutable
// after PrepareBatches returns and are shared read-only by all
// campaign workers, so the good machine is simulated exactly once per
// test set instead of once per worker.
type Batch struct {
	Base int      // index of the batch's first pattern in the test set
	N    int      // patterns in the batch (1..64)
	Good []uint64 // fault-free plane: Good[gate] bit p = value under pattern p
}

// Mask returns the valid-pattern mask of the batch.
func (b *Batch) Mask() uint64 {
	if b.N >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(b.N) - 1
}

// packBatchWords packs patterns [base, base+n) of the set PPI-major:
// words[i] carries scan-load bit i across the batch (bit p = pattern
// base+p). Any X in the range is an error — fault simulation needs
// fully specified loads.
func packBatchWords(set *tcube.Set, base, n int, words []uint64) error {
	for i := range words {
		words[i] = 0
	}
	w := set.Width()
	for p := 0; p < n; p++ {
		c := set.Cube(base + p)
		bit := uint64(1) << uint(p)
		for off := 0; off < w; off += 64 {
			care, val := c.ReadWord(off)
			m := ^uint64(0)
			if w-off < 64 {
				m = uint64(1)<<uint(w-off) - 1
			}
			if care&m != m {
				j := off
				for ; care&1 == 1; j++ {
					care >>= 1
				}
				return fmt.Errorf("faultsim: pattern %d bit %d is X; fill before simulation", base+p, j)
			}
			for val &= m; val != 0; val &= val - 1 {
				j := off + mathbits.TrailingZeros64(val)
				words[j] |= bit
			}
		}
	}
	return nil
}

// PrepareBatches good-simulates the whole fully specified test set
// once into shared read-only batches. workers ≤ 0 selects GOMAXPROCS;
// batches are independent, so they are simulated in parallel when
// workers > 1. The result feeds CampaignPrepared (and every campaign
// entry point internally), eliminating the per-worker re-simulation
// of the good machine.
func PrepareBatches(sv *netlist.ScanView, set *tcube.Set, workers int) ([]Batch, error) {
	if set.Width() != len(sv.PPIs) {
		return nil, fmt.Errorf("faultsim: set width %d, want scan width %d", set.Width(), len(sv.PPIs))
	}
	nb := (set.Len() + 63) / 64
	if nb == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nb {
		workers = nb
	}
	batches := make([]Batch, nb)
	n := sv.Circuit.NumGates()
	build := func(sim *logicsim.Sim, words []uint64, bi int) error {
		base := bi * 64
		cnt := set.Len() - base
		if cnt > 64 {
			cnt = 64
		}
		if err := packBatchWords(set, base, cnt, words); err != nil {
			return err
		}
		if err := sim.Run2Words(words); err != nil {
			return err
		}
		good := make([]uint64, n)
		sim.CopyValues2(good)
		batches[bi] = Batch{Base: base, N: cnt, Good: good}
		return nil
	}
	if workers <= 1 {
		sim := logicsim.New(sv)
		words := make([]uint64, len(sv.PPIs))
		for bi := 0; bi < nb; bi++ {
			if err := build(sim, words, bi); err != nil {
				return nil, err
			}
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sim := logicsim.New(sv)
				words := make([]uint64, len(sv.PPIs))
				for bi := w; bi < nb; bi += workers {
					if err := build(sim, words, bi); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	obs.Active().Counter("faultsim.patterns_simulated").Add(int64(set.Len()))
	return batches, nil
}
