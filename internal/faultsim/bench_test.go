package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/synth"
)

// BenchmarkCampaign pins fault-simulation campaign throughput on the
// seed workload: an s9234-profile synthetic circuit, the full
// (uncollapsed) stuck-at list, and 256 random fully specified
// patterns. This is the number the engine overhaul is graded against
// in the BENCH_*.json perf trajectory.
func BenchmarkCampaign(b *testing.B) {
	cs, err := synth.BenchmarkByName("s9234")
	if err != nil {
		b.Fatal(err)
	}
	prof := synth.CircuitProfileFor(cs, 20, 42)
	ckt, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	sv, err := ckt.FullScan()
	if err != nil {
		b.Fatal(err)
	}
	faults := Universe(ckt)
	rng := rand.New(rand.NewSource(11))
	set := randomSpecifiedSet(rng, 256, sv.ScanWidth())

	var cov Coverage
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov, err = CampaignParallel(sv, set, faults, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cov.Percent(), "cov%")
	b.ReportMetric(float64(len(faults)), "faults")
}

// BenchmarkCampaignSerialCollapsed is the pre-overhaul fast path for
// comparison: serial campaign over the structurally collapsed list.
func BenchmarkCampaignSerialCollapsed(b *testing.B) {
	cs, err := synth.BenchmarkByName("s9234")
	if err != nil {
		b.Fatal(err)
	}
	prof := synth.CircuitProfileFor(cs, 20, 42)
	ckt, err := prof.Generate()
	if err != nil {
		b.Fatal(err)
	}
	sv, err := ckt.FullScan()
	if err != nil {
		b.Fatal(err)
	}
	faults := Collapse(ckt)
	rng := rand.New(rand.NewSource(11))
	set := randomSpecifiedSet(rng, 256, sv.ScanWidth())

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewSimulator(sv).Campaign(set, faults); err != nil {
			b.Fatal(err)
		}
	}
}
