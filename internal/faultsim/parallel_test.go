package faultsim

import (
	"math/rand"
	"testing"
)

func TestCampaignParallelMatchesSerial(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	faults := Collapse(c)
	rng := rand.New(rand.NewSource(5))
	set := randomSpecifiedSet(rng, 100, sv.ScanWidth())

	serial, err := NewSimulator(sv).Campaign(set, faults)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 8, 1000} {
		par, err := CampaignParallel(sv, set, faults, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.Detected != serial.Detected || par.Total != serial.Total {
			t.Fatalf("workers=%d: coverage %d/%d vs serial %d/%d",
				workers, par.Detected, par.Total, serial.Detected, serial.Total)
		}
		for i := range faults {
			if par.FirstDetectedBy[i] != serial.FirstDetectedBy[i] {
				t.Fatalf("workers=%d fault %d: first %d vs %d",
					workers, i, par.FirstDetectedBy[i], serial.FirstDetectedBy[i])
			}
		}
	}
}

func TestCampaignParallelRejectsX(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	if _, err := CampaignParallel(sv, tcubeSetWithX(sv.ScanWidth()), Collapse(c), 4); err == nil {
		t.Fatal("X pattern accepted")
	}
}
