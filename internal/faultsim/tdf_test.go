package faultsim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/netlist"
	"repro/internal/tcube"
)

func TestTDFUniverseSize(t *testing.T) {
	c, _ := circuit(t, s27, "s27")
	u := TDFUniverse(c)
	if len(u) != 2*c.NumGates() {
		t.Fatalf("universe = %d", len(u))
	}
	if !strings.Contains(u[0].String(), "slow-to-rise") || !strings.Contains(u[1].String(), "slow-to-fall") {
		t.Fatalf("naming: %s / %s", u[0], u[1])
	}
}

// Hand-checked TDF detection on a buffer pipeline: q = DFF(a); y is
// the PO observing q. Pattern a=1 with scan cell q=0 launches a rising
// transition on a's cone.
func TestTDFKnownDetection(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
q = DFF(d)
d = BUFF(a)
y = BUFF(q)
`
	c, err := netlist.ParseBench("pipe", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sv, err := c.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	// Scan load = [a, q]. v1 = (a=1, q=0): cycle 1 has d=1 (d follows
	// the held PI, so d itself never transitions) and y=q=0; the launch
	// captures q=1, so cycle 2 has y=q=1. The rising transition lives
	// on q and y; slow-to-rise there keeps the old 0 visible at the PO.
	set := tcube.NewSet("t", 2)
	v1 := bitvec.NewCube(2)
	v1.Set(0, bitvec.One)
	v1.Set(1, bitvec.Zero)
	set.MustAppend(v1)

	d, _ := c.GateByName("d")
	y, _ := c.GateByName("y")
	q, _ := c.GateByName("q")
	faults := []TDF{
		{Gate: y.ID, SlowToRise: true},
		{Gate: q.ID, SlowToRise: true},
		{Gate: y.ID, SlowToRise: false}, // wrong direction: not launched
		{Gate: d.ID, SlowToRise: true},  // d holds 1 across cycles: no transition
	}
	cov, err := TDFCampaign(sv, set, faults)
	if err != nil {
		t.Fatal(err)
	}
	if cov.FirstDetectedBy[0] != 0 || cov.FirstDetectedBy[1] != 0 {
		t.Fatalf("launched slow-to-rise faults not detected: %+v", cov)
	}
	if cov.FirstDetectedBy[2] != -1 || cov.FirstDetectedBy[3] != -1 {
		t.Fatalf("unlaunched faults marked detected: %+v", cov)
	}
	if cov.Detected != 2 {
		t.Fatalf("detected = %d", cov.Detected)
	}
}

func TestTDFCampaignRejectsX(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	if _, err := TDFCampaign(sv, tcubeSetWithX(sv.ScanWidth()), TDFUniverse(c)); err == nil {
		t.Fatal("X pattern accepted")
	}
}

func TestTDFCoverageGrowsWithPatterns(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	faults := TDFUniverse(c)
	rng := rand.New(rand.NewSource(9))
	small := randomSpecifiedSet(rng, 10, sv.ScanWidth())
	big := small.Clone()
	rng2 := rand.New(rand.NewSource(10))
	more := randomSpecifiedSet(rng2, 190, sv.ScanWidth())
	for i := 0; i < more.Len(); i++ {
		big.MustAppend(more.Cube(i))
	}
	covS, err := TDFCampaign(sv, small, faults)
	if err != nil {
		t.Fatal(err)
	}
	covB, err := TDFCampaign(sv, big, faults)
	if err != nil {
		t.Fatal(err)
	}
	if covB.Detected < covS.Detected {
		t.Fatalf("coverage shrank with more patterns: %d -> %d", covS.Detected, covB.Detected)
	}
	if covB.Detected == 0 {
		t.Fatal("no TDF detected by 200 random pairs")
	}
}
