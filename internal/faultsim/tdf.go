package faultsim

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/netlist"
	"repro/internal/tcube"
)

// Transition-delay faults (TDF) under the launch-on-capture scheme:
// pattern v1 is scan-loaded, the functional clock pulses once (launch)
// producing v2 = [same PIs, captured flip-flop state], and a second
// capture observes the fault. A slow-to-rise fault at a net is
// detected when v1 sets the net to 0, v2 sets it to 1 (the transition
// is launched), and the net's stuck-at-0 fault is detected by v2 (the
// slow value is observed). TDFs are the canonical "non-modeled" class
// for a stuck-at ATPG flow — exactly what the paper's random fill of
// leftover don't-cares is meant to catch fortuitously.

// TDF is one transition-delay fault site.
type TDF struct {
	Gate       int
	SlowToRise bool // false = slow-to-fall
}

// String renders e.g. "gate7 slow-to-rise".
func (f TDF) String() string {
	kind := "slow-to-fall"
	if f.SlowToRise {
		kind = "slow-to-rise"
	}
	return fmt.Sprintf("gate%d %s", f.Gate, kind)
}

// TDFUniverse lists both transition faults on every gate output.
func TDFUniverse(c *netlist.Circuit) []TDF {
	out := make([]TDF, 0, 2*c.NumGates())
	for _, g := range c.Gates {
		out = append(out, TDF{Gate: g.ID, SlowToRise: true}, TDF{Gate: g.ID, SlowToRise: false})
	}
	return out
}

// TDFCampaign grades a fully specified test set against the TDF list
// with fault dropping. Each pattern yields one launch-on-capture pair.
func TDFCampaign(sv *netlist.ScanView, set *tcube.Set, faults []TDF) (Coverage, error) {
	loads, err := LoadsFromSet(set)
	if err != nil {
		return Coverage{}, err
	}
	c := sv.Circuit
	nPI := len(c.Inputs)
	sim := NewSimulator(sv)

	cov := Coverage{Total: len(faults), FirstDetectedBy: make([]int, len(faults))}
	for i := range cov.FirstDetectedBy {
		cov.FirstDetectedBy[i] = -1
	}

	for pi, v1 := range loads {
		// Launch: good-simulate v1, derive v2 from the captured state.
		if err := sim.LoadBatch([]*bitvec.Bits{v1}); err != nil {
			return Coverage{}, err
		}
		v1Vals := append([]uint64(nil), sim.goodVal...)
		v2 := bitvec.NewBits(v1.Len())
		for j := 0; j < nPI; j++ {
			v2.Set(j, v1.Get(j)) // PIs held across the launch cycle
		}
		for j, dff := range c.DFFs {
			src := c.Gates[dff].Fanin[0]
			v2.Set(nPI+j, v1Vals[src]&1 == 1)
		}
		// Capture cycle: good machine under v2.
		if err := sim.LoadBatch([]*bitvec.Bits{v2}); err != nil {
			return Coverage{}, err
		}
		v2Vals := sim.goodVal

		for fi, f := range faults {
			if cov.FirstDetectedBy[fi] >= 0 {
				continue
			}
			// Launch condition: the net transitions in the fault's
			// direction between the two cycles.
			before := v1Vals[f.Gate]&1 == 1
			after := v2Vals[f.Gate]&1 == 1
			if f.SlowToRise {
				if before || !after {
					continue
				}
			} else {
				if !before || after {
					continue
				}
			}
			// Observation: the slow net holds its old value during the
			// capture cycle — a stuck-at fault at the old value under v2.
			sa := Fault{Gate: f.Gate, Pin: -1, StuckAt: before}
			mask, err := sim.Detects(sa)
			if err != nil {
				return Coverage{}, err
			}
			if mask != 0 {
				cov.FirstDetectedBy[fi] = pi
				cov.Detected++
			}
		}
	}
	return cov, nil
}
