// Package faultsim provides the single stuck-at fault substrate: fault
// universe construction with structural equivalence collapsing, and an
// event-driven 64-way parallel-pattern single-fault-propagation (PPSFP)
// fault simulator over the full-scan view of a netlist. It is used to
// grade test sets, to drop detected faults during ATPG, and to measure
// the benefit of randomly filling the 9C leftover don't-cares.
package faultsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault site: the output of a gate
// (Pin == -1) or one of its input pins (branch fault).
type Fault struct {
	Gate    int  // gate ID in the circuit
	Pin     int  // -1 for the gate output, else fanin index
	StuckAt bool // stuck value: false = s-a-0, true = s-a-1
}

// String renders e.g. "G11/out s-a-1" or "G9.in0 s-a-0".
func (f Fault) String() string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("gate%d/out s-a-%d", f.Gate, v)
	}
	return fmt.Sprintf("gate%d.in%d s-a-%d", f.Gate, f.Pin, v)
}

// Name renders the fault with net names from c.
func (f Fault) Name(c *netlist.Circuit) string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	g := c.Gates[f.Gate]
	if f.Pin < 0 {
		return fmt.Sprintf("%s s-a-%d", g.Name, v)
	}
	return fmt.Sprintf("%s.%s s-a-%d", g.Name, c.Gates[g.Fanin[f.Pin]].Name, v)
}

// Universe returns the uncollapsed fault list: both stuck values on
// every gate output and on every gate input pin.
func Universe(c *netlist.Circuit) []Fault {
	var out []Fault
	for _, g := range c.Gates {
		for _, v := range []bool{false, true} {
			out = append(out, Fault{Gate: g.ID, Pin: -1, StuckAt: v})
		}
		for pin := range g.Fanin {
			for _, v := range []bool{false, true} {
				out = append(out, Fault{Gate: g.ID, Pin: pin, StuckAt: v})
			}
		}
	}
	return out
}

// Collapse returns an equivalence-collapsed fault list using the
// standard structural rules:
//
//   - single-input gates (BUF/NOT/DFF): input faults are equivalent to
//     output faults and are dropped;
//   - AND/NAND: an input s-a-0 is equivalent to the output s-a-0/s-a-1
//     respectively and is dropped; the input s-a-1 faults remain;
//   - OR/NOR: dually, input s-a-1 faults are dropped;
//   - XOR/XNOR: no input fault is equivalent; all remain;
//   - fanout-free branches: if a gate is the only consumer of its
//     fanin net, the remaining input faults on that pin are equivalent
//     to the driver's output faults and are dropped.
func Collapse(c *netlist.Circuit) []Fault {
	var out []Fault
	for _, g := range c.Gates {
		for _, v := range []bool{false, true} {
			out = append(out, Fault{Gate: g.ID, Pin: -1, StuckAt: v})
		}
		for pin, src := range g.Fanin {
			fanoutFree := len(c.Fanouts(src)) == 1
			for _, v := range []bool{false, true} {
				if equivalentToOutput(g.Type, v) {
					continue
				}
				if fanoutFree {
					// Branch ≡ stem: already covered by the driver's
					// output fault of the same polarity (through any
					// chain of non-controlling equivalences this is
					// conservative but standard).
					continue
				}
				out = append(out, Fault{Gate: g.ID, Pin: pin, StuckAt: v})
			}
		}
	}
	return out
}

// equivalentToOutput reports whether an input fault with the given
// stuck value collapses onto the gate's output fault.
func equivalentToOutput(t netlist.GateType, stuckAt bool) bool {
	switch t {
	case netlist.Buf, netlist.Not, netlist.DFF:
		return true
	case netlist.And, netlist.Nand:
		return !stuckAt // s-a-0 is controlling
	case netlist.Or, netlist.Nor:
		return stuckAt // s-a-1 is controlling
	}
	return false
}
