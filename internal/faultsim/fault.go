// Package faultsim provides the single stuck-at fault substrate: fault
// universe construction with structural equivalence collapsing, and an
// event-driven 64-way parallel-pattern single-fault-propagation (PPSFP)
// fault simulator over the full-scan view of a netlist. It is used to
// grade test sets, to drop detected faults during ATPG, and to measure
// the benefit of randomly filling the 9C leftover don't-cares.
package faultsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Fault is a single stuck-at fault site: the output of a gate
// (Pin == -1) or one of its input pins (branch fault).
type Fault struct {
	Gate    int  // gate ID in the circuit
	Pin     int  // -1 for the gate output, else fanin index
	StuckAt bool // stuck value: false = s-a-0, true = s-a-1
}

// String renders e.g. "G11/out s-a-1" or "G9.in0 s-a-0".
func (f Fault) String() string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("gate%d/out s-a-%d", f.Gate, v)
	}
	return fmt.Sprintf("gate%d.in%d s-a-%d", f.Gate, f.Pin, v)
}

// Name renders the fault with net names from c.
func (f Fault) Name(c *netlist.Circuit) string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	g := c.Gates[f.Gate]
	if f.Pin < 0 {
		return fmt.Sprintf("%s s-a-%d", g.Name, v)
	}
	return fmt.Sprintf("%s.%s s-a-%d", g.Name, c.Gates[g.Fanin[f.Pin]].Name, v)
}

// Universe returns the uncollapsed fault list: both stuck values on
// every gate output and on every gate input pin.
func Universe(c *netlist.Circuit) []Fault {
	var out []Fault
	for _, g := range c.Gates {
		for _, v := range []bool{false, true} {
			out = append(out, Fault{Gate: g.ID, Pin: -1, StuckAt: v})
		}
		for pin := range g.Fanin {
			for _, v := range []bool{false, true} {
				out = append(out, Fault{Gate: g.ID, Pin: pin, StuckAt: v})
			}
		}
	}
	return out
}

// Collapse returns an equivalence-collapsed fault list using the
// standard structural rules:
//
//   - single-input gates (BUF/NOT/DFF): input faults are equivalent to
//     output faults and are dropped;
//   - AND/NAND: an input s-a-0 is equivalent to the output s-a-0/s-a-1
//     respectively and is dropped; the input s-a-1 faults remain;
//   - OR/NOR: dually, input s-a-1 faults are dropped;
//   - XOR/XNOR: no input fault is equivalent; all remain;
//   - fanout-free branches: if a gate is the only consumer of its
//     fanin net, the remaining input faults on that pin are equivalent
//     to the driver's output faults and are dropped.
func Collapse(c *netlist.Circuit) []Fault {
	var out []Fault
	for _, g := range c.Gates {
		for _, v := range []bool{false, true} {
			out = append(out, Fault{Gate: g.ID, Pin: -1, StuckAt: v})
		}
		for pin, src := range g.Fanin {
			fanoutFree := len(c.Fanouts(src)) == 1
			for _, v := range []bool{false, true} {
				if equivalentToOutput(g.Type, v) {
					continue
				}
				if fanoutFree {
					// Branch ≡ stem: already covered by the driver's
					// output fault of the same polarity (through any
					// chain of non-controlling equivalences this is
					// conservative but standard).
					continue
				}
				out = append(out, Fault{Gate: g.ID, Pin: pin, StuckAt: v})
			}
		}
	}
	return out
}

// equivalentToOutput reports whether an input fault with the given
// stuck value collapses onto the gate's output fault.
func equivalentToOutput(t netlist.GateType, stuckAt bool) bool {
	switch t {
	case netlist.Buf, netlist.Not, netlist.DFF:
		return true
	case netlist.And, netlist.Nand:
		return !stuckAt // s-a-0 is controlling
	case netlist.Or, netlist.Nor:
		return stuckAt // s-a-1 is controlling
	}
	return false
}

// Classes is the result of CollapseFaults: the fault list partitioned
// into exact detection-equivalence classes. Reps holds one
// representative per class (always an element of the input list, in
// input order); Of[i] is the class of input fault i. Simulating only
// Reps and copying each representative's result to its whole class
// reproduces the per-fault campaign outcome bit for bit.
type Classes struct {
	Reps []Fault
	Of   []int
}

// CollapseFaults groups the fault list into stuck-at equivalence
// classes that are *exact* for the PPSFP simulator — two faults land
// in one class only when Detects provably returns the same mask for
// both under every batch, so collapsed campaigns report identical
// Coverage (Detected, FirstDetectedBy) for the full list. Two rules
// apply, both yielding the same injected value plane at the same gate:
//
//   - input ≡ output at the gate itself: BUF in s-a-v ≡ out s-a-v,
//     NOT in s-a-v ≡ out s-a-(¬v), AND/NAND in s-a-0 ≡ out
//     s-a-0/s-a-1, OR/NOR in s-a-1 ≡ out s-a-1/s-a-0 (the controlling
//     value forces the output plane to the same constant the output
//     fault injects);
//   - fanout-free branch ≡ stem: when driver d feeds exactly one pin
//     anywhere and is not itself observed as a PPO, the branch fault
//     (g, pin, v) and the stem fault (d, out, v) corrupt the circuit
//     identically.
//
// DFF input-pin faults join no class: the simulator detects them on a
// dedicated capture-only path that no output fault reproduces. The
// classical dominance-based Collapse above shrinks the list further
// but only preserves aggregate coverage, not per-fault masks.
func CollapseFaults(c *netlist.Circuit, faults []Fault) Classes {
	idx := make(map[Fault]int, len(faults))
	for i, f := range faults {
		if _, dup := idx[f]; !dup {
			idx[f] = i
		}
	}
	parent := make([]int, len(faults))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]] // path halving
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra // smallest index roots the class
	}
	merge := func(i int, partner Fault) {
		if j, ok := idx[partner]; ok {
			union(i, j)
		}
	}
	isPPO := make([]bool, len(c.Gates))
	for _, o := range c.Outputs {
		isPPO[o] = true
	}
	for _, d := range c.DFFs {
		isPPO[c.Gates[d].Fanin[0]] = true
	}
	for i, f := range faults {
		if j := idx[f]; j != i {
			union(i, j) // duplicate fault entries share one class
		}
		if f.Gate < 0 || f.Gate >= len(c.Gates) {
			continue // malformed site: leave it alone
		}
		g := &c.Gates[f.Gate]
		if f.Pin < 0 || f.Pin >= len(g.Fanin) {
			continue // output faults anchor classes; nothing to merge from
		}
		if g.Type == netlist.DFF {
			continue // capture-only detection path, never equivalent
		}
		switch g.Type {
		case netlist.Buf:
			merge(i, Fault{Gate: f.Gate, Pin: -1, StuckAt: f.StuckAt})
		case netlist.Not:
			merge(i, Fault{Gate: f.Gate, Pin: -1, StuckAt: !f.StuckAt})
		case netlist.And:
			if !f.StuckAt {
				merge(i, Fault{Gate: f.Gate, Pin: -1, StuckAt: false})
			}
		case netlist.Nand:
			if !f.StuckAt {
				merge(i, Fault{Gate: f.Gate, Pin: -1, StuckAt: true})
			}
		case netlist.Or:
			if f.StuckAt {
				merge(i, Fault{Gate: f.Gate, Pin: -1, StuckAt: true})
			}
		case netlist.Nor:
			if f.StuckAt {
				merge(i, Fault{Gate: f.Gate, Pin: -1, StuckAt: false})
			}
		}
		d := g.Fanin[f.Pin]
		if len(c.Fanouts(d)) == 1 && !isPPO[d] {
			merge(i, Fault{Gate: d, Pin: -1, StuckAt: f.StuckAt})
		}
	}
	cls := Classes{Of: make([]int, len(faults))}
	repOf := make(map[int]int, len(faults))
	for i := range faults {
		root := find(i)
		ri, ok := repOf[root]
		if !ok {
			ri = len(cls.Reps)
			repOf[root] = ri
			cls.Reps = append(cls.Reps, faults[root])
		}
		cls.Of[i] = ri
	}
	return cls
}
