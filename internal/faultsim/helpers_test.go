package faultsim

import (
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/tcube"
)

// randomSpecifiedSet builds n fully specified random patterns of the
// given width.
func randomSpecifiedSet(rng *rand.Rand, n, width int) *tcube.Set {
	set := tcube.NewSet("rand", width)
	for i := 0; i < n; i++ {
		c := bitvec.NewCube(width)
		for j := 0; j < width; j++ {
			if rng.Intn(2) == 1 {
				c.Set(j, bitvec.One)
			} else {
				c.Set(j, bitvec.Zero)
			}
		}
		set.MustAppend(c)
	}
	return set
}

// tcubeSetWithX builds a single-cube set containing an X.
func tcubeSetWithX(width int) *tcube.Set {
	set := tcube.NewSet("x", width)
	c := bitvec.NewCube(width)
	c.Set(0, bitvec.One) // rest X
	set.MustAppend(c)
	return set
}
