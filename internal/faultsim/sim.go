package faultsim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/tcube"
)

// Simulator runs event-driven PPSFP fault simulation: one batch of up
// to 64 fully specified scan loads is simulated fault-free, then each
// fault is injected and its effects propagated through the fanout cone
// only, comparing against the good machine at the PPOs.
type Simulator struct {
	sv   *netlist.ScanView
	good *logicsim.Sim

	pos     []int // topological position of each gate
	goodVal []uint64
	val     []uint64 // faulty plane, reset to goodVal between faults
	touched []int

	pq     posHeap
	inHeap []bool

	nbatch int // patterns in the current batch
}

// NewSimulator returns a fault simulator for the scan view.
func NewSimulator(sv *netlist.ScanView) *Simulator {
	n := sv.Circuit.NumGates()
	s := &Simulator{
		sv:     sv,
		good:   logicsim.New(sv),
		pos:    make([]int, n),
		val:    make([]uint64, n),
		inHeap: make([]bool, n),
	}
	for i, id := range sv.Order {
		s.pos[id] = i
	}
	return s
}

// LoadBatch good-simulates up to 64 fully specified scan loads,
// establishing the reference machine for subsequent Detects calls.
func (s *Simulator) LoadBatch(loads []*bitvec.Bits) error {
	if _, err := s.good.Run2(loads); err != nil {
		return err
	}
	s.goodVal = s.good.Values2()
	copy(s.val, s.goodVal)
	s.nbatch = len(loads)
	return nil
}

// batchMask returns the mask of valid pattern bits in the batch.
func (s *Simulator) batchMask() uint64 {
	if s.nbatch >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(s.nbatch) - 1
}

// ErrNoBatch is returned by Detects when no batch has been loaded:
// there is no reference machine to compare against.
var ErrNoBatch = errors.New("faultsim: Detects before LoadBatch")

// Detects returns the mask of patterns in the current batch that
// detect f (bit p set = pattern p observes a difference at some PPO).
// Calling it before LoadBatch returns ErrNoBatch.
func (s *Simulator) Detects(f Fault) (uint64, error) {
	if s.goodVal == nil {
		return 0, ErrNoBatch
	}
	c := s.sv.Circuit
	g := c.Gates[f.Gate]
	stuck := uint64(0)
	if f.StuckAt {
		stuck = ^uint64(0)
	}

	// DFF input-pin faults only corrupt the captured (observed) value.
	if g.Type == netlist.DFF && f.Pin == 0 {
		return (s.goodVal[g.Fanin[0]] ^ stuck) & s.batchMask(), nil
	}

	// Inject at the fault gate.
	var nv uint64
	if f.Pin < 0 {
		nv = stuck
	} else {
		nv = s.evalGate(f.Gate, f.Pin, stuck)
	}
	if nv == s.goodVal[f.Gate] {
		return 0, nil // never activated in this batch
	}
	s.setFaulty(f.Gate, nv)

	// Propagate through the fanout cone in topological order.
	for s.pq.Len() > 0 {
		id := keyID(heap.Pop(&s.pq).(int64))
		s.inHeap[id] = false
		gg := &c.Gates[id]
		if gg.Type == netlist.Input || gg.Type == netlist.DFF {
			continue // sources: fault effects do not pass through scan cells
		}
		nv := s.evalGate(id, -1, 0)
		if nv != s.val[id] {
			s.setFaulty(id, nv)
		}
	}

	// Observe.
	var mask uint64
	for _, id := range s.sv.PPOs {
		mask |= s.goodVal[id] ^ s.val[id]
	}
	mask &= s.batchMask()

	// Reset the faulty plane.
	for _, id := range s.touched {
		s.val[id] = s.goodVal[id]
	}
	s.touched = s.touched[:0]
	return mask, nil
}

// setFaulty records a faulty value and schedules the gate's fanouts.
func (s *Simulator) setFaulty(id int, nv uint64) {
	if s.val[id] == s.goodVal[id] {
		s.touched = append(s.touched, id)
	}
	s.val[id] = nv
	for _, fo := range s.sv.Circuit.Fanouts(id) {
		if !s.inHeap[fo] {
			s.inHeap[fo] = true
			heap.Push(&s.pq, packKey(s.pos[fo], fo))
		}
	}
}

// evalGate computes gate id over the faulty plane; if overridePin >= 0
// that fanin reads overrideVal instead (input-pin fault injection).
func (s *Simulator) evalGate(id, overridePin int, overrideVal uint64) uint64 {
	g := &s.sv.Circuit.Gates[id]
	in := func(pin int) uint64 {
		if pin == overridePin {
			return overrideVal
		}
		return s.val[g.Fanin[pin]]
	}
	switch g.Type {
	case netlist.Buf:
		return in(0)
	case netlist.Not:
		return ^in(0)
	case netlist.And, netlist.Nand:
		v := ^uint64(0)
		for pin := range g.Fanin {
			v &= in(pin)
		}
		if g.Type == netlist.Nand {
			v = ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := uint64(0)
		for pin := range g.Fanin {
			v |= in(pin)
		}
		if g.Type == netlist.Nor {
			v = ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := uint64(0)
		for pin := range g.Fanin {
			v ^= in(pin)
		}
		if g.Type == netlist.Xnor {
			v = ^v
		}
		return v
	}
	// Input/DFF are never re-evaluated.
	return s.val[id]
}

// posHeap orders pending gates by topological position so fault
// effects are evaluated strictly downstream. It stores packed
// (pos<<32 | id) keys.
type posHeap []int64

func packKey(pos, id int) int64 { return int64(pos)<<32 | int64(id) }
func keyID(k int64) int         { return int(k & 0xffffffff) }

func (h posHeap) Len() int           { return len(h) }
func (h posHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h posHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }

func (h *posHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }

func (h *posHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Coverage summarizes a fault-simulation campaign.
type Coverage struct {
	Total    int
	Detected int
	// FirstDetectedBy[i] is the index of the first pattern detecting
	// fault i, or -1.
	FirstDetectedBy []int
}

// Percent returns the fault coverage percentage.
func (c Coverage) Percent() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// LoadsFromSet converts a fully specified test set into packed loads.
func LoadsFromSet(s *tcube.Set) ([]*bitvec.Bits, error) {
	out := make([]*bitvec.Bits, s.Len())
	for i := 0; i < s.Len(); i++ {
		c := s.Cube(i)
		b := bitvec.NewBits(c.Len())
		for j := 0; j < c.Len(); j++ {
			switch c.Get(j) {
			case bitvec.One:
				b.Set(j, true)
			case bitvec.Zero:
			default:
				return nil, fmt.Errorf("faultsim: pattern %d bit %d is X; fill before simulation", i, j)
			}
		}
		out[i] = b
	}
	return out, nil
}

// Campaign fault-simulates the whole test set against the fault list
// with fault dropping, batch by batch.
func (s *Simulator) Campaign(set *tcube.Set, faults []Fault) (Coverage, error) {
	return s.CampaignCtx(context.Background(), set, faults)
}

// CampaignCtx is Campaign under a context: cancellation is observed at
// batch granularity (a 64-pattern batch is the unit of useful work) and
// surfaces as ctx.Err() with no partial coverage. A non-cancellable
// context costs nothing on the hot path.
func (s *Simulator) CampaignCtx(ctx context.Context, set *tcube.Set, faults []Fault) (Coverage, error) {
	reg := obs.Active()
	sp := reg.Span("faultsim.campaign").
		Set("patterns", set.Len()).Set("faults", len(faults))
	loads, err := LoadsFromSet(set)
	if err != nil {
		sp.Set("error", err.Error()).End()
		return Coverage{}, err
	}
	cancellable := ctx.Done() != nil
	cov := Coverage{Total: len(faults), FirstDetectedBy: make([]int, len(faults))}
	for i := range cov.FirstDetectedBy {
		cov.FirstDetectedBy[i] = -1
	}
	for base := 0; base < len(loads); base += 64 {
		if cancellable {
			if err := ctx.Err(); err != nil {
				sp.Set("error", err.Error()).End()
				return Coverage{}, err
			}
		}
		end := base + 64
		if end > len(loads) {
			end = len(loads)
		}
		if err := s.LoadBatch(loads[base:end]); err != nil {
			sp.Set("error", err.Error()).End()
			return Coverage{}, err
		}
		dropped := 0
		for fi, f := range faults {
			if cov.FirstDetectedBy[fi] >= 0 {
				continue // dropped
			}
			mask, err := s.Detects(f)
			if err != nil {
				sp.Set("error", err.Error()).End()
				return Coverage{}, err
			}
			if mask != 0 {
				first := 0
				for mask&1 == 0 {
					mask >>= 1
					first++
				}
				cov.FirstDetectedBy[fi] = base + first
				cov.Detected++
				dropped++
			}
		}
		if reg != nil {
			reg.Counter("faultsim.patterns_simulated").Add(int64(end - base))
			reg.Counter("faultsim.faults_dropped").Add(int64(dropped))
			reg.Emit("progress", "faultsim.batch", map[string]any{
				"patterns": end, "total_patterns": len(loads),
				"detected": cov.Detected, "faults": len(faults),
			})
		}
	}
	sp.Set("detected", cov.Detected).End()
	return cov, nil
}
