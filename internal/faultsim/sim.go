package faultsim

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/tcube"
)

// Simulator runs event-driven PPSFP fault simulation: one batch of up
// to 64 fully specified scan loads is simulated fault-free, then each
// fault is injected and its effects propagated through the fanout cone
// only, comparing against the good machine at the PPOs.
//
// The propagation scheduler is an index-ordered bucket queue over the
// scan view's precomputed topological levels: same-level gates are
// independent, pushes always target strictly deeper levels, and the
// whole structure is reused across Detects calls, so the hot path is
// allocation-free (locked in by TestDetectsNoAllocs). Observation
// walks only the gates the fault actually touched, intersected with
// the PPO flags — the dynamic realization of the fault's static
// output-cone PPO subset.
type Simulator struct {
	sv   *netlist.ScanView
	good *logicsim.Sim // lazily created; only LoadBatch needs it

	goodVal []uint64 // reference plane: owned (LoadBatch) or shared (UseBatch)
	val     []uint64 // faulty plane, reset to goodVal between faults
	touched []int32

	fo      [][]int // cached fanout lists
	comb    []bool  // combinational gate (fault effects propagate through)
	levels  []int32 // scan-view level per gate
	buckets [][]int32
	inQ     []bool
	pending int

	nbatch int // patterns in the current batch
}

// NewSimulator returns a fault simulator for the scan view.
func NewSimulator(sv *netlist.ScanView) *Simulator {
	c := sv.Circuit
	n := c.NumGates()
	s := &Simulator{
		sv:      sv,
		val:     make([]uint64, n),
		fo:      make([][]int, n),
		comb:    make([]bool, n),
		levels:  make([]int32, n),
		buckets: make([][]int32, sv.Depth+1),
		inQ:     make([]bool, n),
	}
	for id := range s.fo {
		s.fo[id] = c.Fanouts(id)
		t := c.Gates[id].Type
		s.comb[id] = t != netlist.Input && t != netlist.DFF
		s.levels[id] = int32(sv.Level[id])
	}
	return s
}

// LoadBatch good-simulates up to 64 fully specified scan loads,
// establishing the reference machine for subsequent Detects calls.
func (s *Simulator) LoadBatch(loads []*bitvec.Bits) error {
	if s.good == nil {
		s.good = logicsim.New(s.sv)
	}
	if _, err := s.good.Run2(loads); err != nil {
		return err
	}
	s.goodVal = s.good.Values2()
	copy(s.val, s.goodVal)
	s.nbatch = len(loads)
	return nil
}

// UseBatch points the simulator at a precomputed shared good-machine
// batch (see PrepareBatches). The batch's value plane is read-only and
// may be shared by any number of simulators concurrently; only the
// simulator's private faulty plane is written.
func (s *Simulator) UseBatch(b *Batch) {
	s.goodVal = b.Good
	copy(s.val, b.Good)
	s.nbatch = b.N
}

// batchMask returns the mask of valid pattern bits in the batch.
func (s *Simulator) batchMask() uint64 {
	if s.nbatch >= 64 {
		return ^uint64(0)
	}
	return uint64(1)<<uint(s.nbatch) - 1
}

// ErrNoBatch is returned by Detects when no batch has been loaded:
// there is no reference machine to compare against.
var ErrNoBatch = errors.New("faultsim: Detects before LoadBatch")

// Detects returns the mask of patterns in the current batch that
// detect f (bit p set = pattern p observes a difference at some PPO).
// Calling it before LoadBatch returns ErrNoBatch.
func (s *Simulator) Detects(f Fault) (uint64, error) {
	if s.goodVal == nil {
		return 0, ErrNoBatch
	}
	c := s.sv.Circuit
	g := &c.Gates[f.Gate]
	stuck := uint64(0)
	if f.StuckAt {
		stuck = ^uint64(0)
	}

	// DFF input-pin faults only corrupt the captured (observed) value.
	if g.Type == netlist.DFF && f.Pin == 0 {
		return (s.goodVal[g.Fanin[0]] ^ stuck) & s.batchMask(), nil
	}

	// Static cone reach: a fault whose site cannot reach any PPO is
	// undetectable by construction — skip injection entirely.
	if !s.sv.Observable[f.Gate] {
		return 0, nil
	}

	// Inject at the fault gate.
	var nv uint64
	if f.Pin < 0 {
		nv = stuck
	} else {
		nv = s.evalGate(f.Gate, f.Pin, stuck)
	}
	if nv == s.goodVal[f.Gate] {
		return 0, nil // never activated in this batch
	}
	s.setFaulty(f.Gate, nv)

	// Drain the level buckets in topological order. Every scheduled
	// gate sits strictly deeper than the gate that scheduled it, so a
	// single forward sweep evaluates each gate at most once.
	for lvl := int(s.levels[f.Gate]) + 1; s.pending > 0; lvl++ {
		b := s.buckets[lvl]
		for _, id32 := range b {
			id := int(id32)
			s.inQ[id] = false
			s.pending--
			nv := s.evalGate(id, -1, 0)
			if nv != s.val[id] {
				s.setFaulty(id, nv)
			}
		}
		s.buckets[lvl] = b[:0]
	}

	// Observe: only touched gates can differ from the good machine, so
	// scanning touched ∩ PPO covers exactly the fault cone's PPOs.
	var mask uint64
	for _, id := range s.touched {
		if s.sv.IsPPO[id] {
			mask |= s.goodVal[id] ^ s.val[id]
		}
	}
	mask &= s.batchMask()

	// Reset the faulty plane.
	for _, id := range s.touched {
		s.val[id] = s.goodVal[id]
	}
	s.touched = s.touched[:0]
	return mask, nil
}

// setFaulty records a faulty value and schedules the gate's
// combinational fanouts (fault effects stop at scan cells).
func (s *Simulator) setFaulty(id int, nv uint64) {
	if s.val[id] == s.goodVal[id] {
		s.touched = append(s.touched, int32(id))
	}
	s.val[id] = nv
	for _, fo := range s.fo[id] {
		if !s.inQ[fo] && s.comb[fo] {
			s.inQ[fo] = true
			s.pending++
			lvl := s.levels[fo]
			s.buckets[lvl] = append(s.buckets[lvl], int32(fo))
		}
	}
}

// evalGate computes gate id over the faulty plane; if overridePin >= 0
// that fanin reads overrideVal instead (input-pin fault injection).
func (s *Simulator) evalGate(id, overridePin int, overrideVal uint64) uint64 {
	g := &s.sv.Circuit.Gates[id]
	in := func(pin int) uint64 {
		if pin == overridePin {
			return overrideVal
		}
		return s.val[g.Fanin[pin]]
	}
	switch g.Type {
	case netlist.Buf:
		return in(0)
	case netlist.Not:
		return ^in(0)
	case netlist.And, netlist.Nand:
		v := ^uint64(0)
		for pin := range g.Fanin {
			v &= in(pin)
		}
		if g.Type == netlist.Nand {
			v = ^v
		}
		return v
	case netlist.Or, netlist.Nor:
		v := uint64(0)
		for pin := range g.Fanin {
			v |= in(pin)
		}
		if g.Type == netlist.Nor {
			v = ^v
		}
		return v
	case netlist.Xor, netlist.Xnor:
		v := uint64(0)
		for pin := range g.Fanin {
			v ^= in(pin)
		}
		if g.Type == netlist.Xnor {
			v = ^v
		}
		return v
	}
	// Input/DFF are never re-evaluated.
	return s.val[id]
}

// Coverage summarizes a fault-simulation campaign.
type Coverage struct {
	Total    int
	Detected int
	// FirstDetectedBy[i] is the index of the first pattern detecting
	// fault i, or -1.
	FirstDetectedBy []int
}

// Percent returns the fault coverage percentage.
func (c Coverage) Percent() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// LoadsFromSet converts a fully specified test set into packed loads.
func LoadsFromSet(s *tcube.Set) ([]*bitvec.Bits, error) {
	out := make([]*bitvec.Bits, s.Len())
	for i := 0; i < s.Len(); i++ {
		c := s.Cube(i)
		b := bitvec.NewBits(c.Len())
		for j := 0; j < c.Len(); j++ {
			switch c.Get(j) {
			case bitvec.One:
				b.Set(j, true)
			case bitvec.Zero:
			default:
				return nil, fmt.Errorf("faultsim: pattern %d bit %d is X; fill before simulation", i, j)
			}
		}
		out[i] = b
	}
	return out, nil
}

// Campaign fault-simulates the whole test set against the fault list
// with fault dropping, batch by batch.
func (s *Simulator) Campaign(set *tcube.Set, faults []Fault) (Coverage, error) {
	return s.CampaignCtx(context.Background(), set, faults)
}

// CampaignCtx is Campaign under a context: cancellation is observed at
// batch granularity (a 64-pattern batch is the unit of useful work) and
// surfaces as ctx.Err() with no partial coverage. A non-cancellable
// context costs nothing on the hot path.
//
// It is a thin wrapper over the shared campaign engine: the test set
// is converted and good-simulated exactly once (PrepareBatches) and
// the engine injects only one representative per equivalence class of
// CollapseFaults, expanding the result back over the full list — the
// coverage is bit-identical to simulating every fault individually.
func (s *Simulator) CampaignCtx(ctx context.Context, set *tcube.Set, faults []Fault) (Coverage, error) {
	return campaignRun(ctx, s.sv, nil, set, faults, 1)
}
