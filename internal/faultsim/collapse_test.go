package faultsim

import (
	"math/rand"
	"testing"

	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/tcube"
)

// referenceCampaign is the uncollapsed, unshared baseline: loads are
// converted per call, the good machine is re-simulated per batch via
// LoadBatch, and every fault in the list is injected individually.
// Detects itself is validated against a naive full re-simulation in
// TestPropertyDetectsMatchesNaive, so this anchors the campaign
// engine's collapsing/batching/stealing machinery.
func referenceCampaign(t *testing.T, s *Simulator, set *tcube.Set, faults []Fault) Coverage {
	t.Helper()
	loads, err := LoadsFromSet(set)
	if err != nil {
		t.Fatal(err)
	}
	cov := Coverage{Total: len(faults), FirstDetectedBy: make([]int, len(faults))}
	for i := range cov.FirstDetectedBy {
		cov.FirstDetectedBy[i] = -1
	}
	for base := 0; base < len(loads); base += 64 {
		end := base + 64
		if end > len(loads) {
			end = len(loads)
		}
		if err := s.LoadBatch(loads[base:end]); err != nil {
			t.Fatal(err)
		}
		for fi, f := range faults {
			if cov.FirstDetectedBy[fi] >= 0 {
				continue
			}
			mask, err := s.Detects(f)
			if err != nil {
				t.Fatal(err)
			}
			if mask != 0 {
				first := 0
				for mask&1 == 0 {
					mask >>= 1
					first++
				}
				cov.FirstDetectedBy[fi] = base + first
				cov.Detected++
			}
		}
	}
	return cov
}

func sameCoverage(t *testing.T, what string, got, want Coverage) {
	t.Helper()
	if got.Total != want.Total || got.Detected != want.Detected {
		t.Fatalf("%s: coverage %d/%d, want %d/%d", what, got.Detected, got.Total, want.Detected, want.Total)
	}
	for i := range want.FirstDetectedBy {
		if got.FirstDetectedBy[i] != want.FirstDetectedBy[i] {
			t.Fatalf("%s: fault %d first-detected %d, want %d",
				what, i, got.FirstDetectedBy[i], want.FirstDetectedBy[i])
		}
	}
}

// TestCollapsedCampaignMatchesUncollapsed is the differential for the
// whole engine: the campaign (which collapses to representatives,
// shares precomputed batches, and classifies unobservable cones up
// front) must report bit-identical Coverage — Detected, Percent, and
// FirstDetectedBy expanded through the representative mapping — to the
// per-fault uncollapsed baseline, on both the full universe and the
// structurally collapsed list.
func TestCollapsedCampaignMatchesUncollapsed(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	rng := rand.New(rand.NewSource(21))
	set := randomSpecifiedSet(rng, 150, sv.ScanWidth())
	for _, tc := range []struct {
		name   string
		faults []Fault
	}{
		{"universe", Universe(c)},
		{"collapsed", Collapse(c)},
	} {
		want := referenceCampaign(t, NewSimulator(sv), set, tc.faults)
		serial, err := NewSimulator(sv).Campaign(set, tc.faults)
		if err != nil {
			t.Fatal(err)
		}
		sameCoverage(t, tc.name+"/serial", serial, want)
		if serial.Percent() != want.Percent() {
			t.Fatalf("%s: percent %v != %v", tc.name, serial.Percent(), want.Percent())
		}
		for _, workers := range []int{2, 3, 8} {
			par, err := CampaignParallel(sv, set, tc.faults, workers)
			if err != nil {
				t.Fatal(err)
			}
			sameCoverage(t, tc.name+"/parallel", par, want)
		}
	}
}

// TestCollapsedCampaignOnSynthetic repeats the differential on a
// randomly synthesized netlist, where fanout-free chains, XOR gates
// and unobservable cones all actually occur.
func TestCollapsedCampaignOnSynthetic(t *testing.T) {
	p := synth.CircuitProfile{Name: "syn", PIs: 10, POs: 5, FFs: 8, Gates: 120, Seed: 33}
	ckt, err := p.Generate()
	if err != nil {
		t.Fatal(err)
	}
	sv, err := ckt.FullScan()
	if err != nil {
		t.Fatal(err)
	}
	faults := Universe(ckt)
	rng := rand.New(rand.NewSource(34))
	set := randomSpecifiedSet(rng, 200, sv.ScanWidth())
	want := referenceCampaign(t, NewSimulator(sv), set, faults)
	got, err := CampaignParallel(sv, set, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameCoverage(t, "synthetic", got, want)
}

// TestPropertyCollapseClassesExact is the property behind collapsed
// campaigns: on randomized netlists, every fault's detection mask
// equals its class representative's mask for every random batch. This
// is strictly stronger than coverage equality — it pins the exactness
// of each CollapseFaults rule.
func TestPropertyCollapseClassesExact(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		p := synth.CircuitProfile{Name: "prop", PIs: 6, POs: 3, FFs: 5, Gates: 40 + 10*int(seed), Seed: 100 + seed}
		ckt, err := p.Generate()
		if err != nil {
			t.Fatal(err)
		}
		sv, err := ckt.FullScan()
		if err != nil {
			t.Fatal(err)
		}
		faults := Universe(ckt)
		cls := CollapseFaults(ckt, faults)
		if len(cls.Reps) >= len(faults) {
			t.Fatalf("seed %d: no collapsing happened (%d reps for %d faults)", seed, len(cls.Reps), len(faults))
		}
		sim := NewSimulator(sv)
		rng := rand.New(rand.NewSource(1000 + seed))
		for round := 0; round < 3; round++ {
			set := randomSpecifiedSet(rng, 32, sv.ScanWidth())
			loads, err := LoadsFromSet(set)
			if err != nil {
				t.Fatal(err)
			}
			if err := sim.LoadBatch(loads); err != nil {
				t.Fatal(err)
			}
			repMask := make([]uint64, len(cls.Reps))
			for ri, f := range cls.Reps {
				if repMask[ri], err = sim.Detects(f); err != nil {
					t.Fatal(err)
				}
			}
			for i, f := range faults {
				got, err := sim.Detects(f)
				if err != nil {
					t.Fatal(err)
				}
				if got != repMask[cls.Of[i]] {
					t.Fatalf("seed %d: fault %v mask %b, rep %v mask %b",
						seed, f, got, cls.Reps[cls.Of[i]], repMask[cls.Of[i]])
				}
			}
		}
	}
}

// TestCollapseFaultsMapping checks the structural contract of the
// representative mapping.
func TestCollapseFaultsMapping(t *testing.T) {
	c, _ := circuit(t, s27, "s27")
	faults := Universe(c)
	cls := CollapseFaults(c, faults)
	if len(cls.Of) != len(faults) {
		t.Fatalf("Of has %d entries for %d faults", len(cls.Of), len(faults))
	}
	if len(cls.Reps) == 0 || len(cls.Reps) >= len(faults) {
		t.Fatalf("suspicious class count %d for %d faults", len(cls.Reps), len(faults))
	}
	inList := map[Fault]bool{}
	for _, f := range faults {
		inList[f] = true
	}
	seen := map[Fault]bool{}
	for _, r := range cls.Reps {
		if !inList[r] {
			t.Fatalf("representative %v not in the input list", r)
		}
		if seen[r] {
			t.Fatalf("representative %v appears twice", r)
		}
		seen[r] = true
	}
	for i, of := range cls.Of {
		if of < 0 || of >= len(cls.Reps) {
			t.Fatalf("fault %d maps to class %d of %d", i, of, len(cls.Reps))
		}
	}
	// A fault that is itself a representative must map to itself.
	for ri, r := range cls.Reps {
		for i, f := range faults {
			if f == r {
				if cls.Of[i] != ri {
					t.Fatalf("representative %v maps to class %d, not its own %d", r, cls.Of[i], ri)
				}
				break
			}
		}
	}
}

// TestCampaignEquivalenceSmoke is the `make check` gate: a parallel,
// collapsed campaign over the full universe must match the serial
// per-fault reference exactly on a small circuit.
func TestCampaignEquivalenceSmoke(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	faults := Universe(c)
	rng := rand.New(rand.NewSource(55))
	set := randomSpecifiedSet(rng, 96, sv.ScanWidth())
	want := referenceCampaign(t, NewSimulator(sv), set, faults)
	got, err := CampaignParallel(sv, set, faults, 4)
	if err != nil {
		t.Fatal(err)
	}
	sameCoverage(t, "smoke", got, want)
}

// TestDetectsNoAllocs locks in the allocation-free cone scheduler: the
// boxed container/heap is gone, and a Detects call must not allocate.
func TestDetectsNoAllocs(t *testing.T) {
	c, sv := circuit(t, s27, "s27")
	s := NewSimulator(sv)
	rng := rand.New(rand.NewSource(9))
	loads, err := LoadsFromSet(randomSpecifiedSet(rng, 64, sv.ScanWidth()))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadBatch(loads); err != nil {
		t.Fatal(err)
	}
	faults := Universe(c)
	for _, f := range faults { // warm the reusable buckets/touched buffers
		if _, err := s.Detects(f); err != nil {
			t.Fatal(err)
		}
	}
	for _, f := range faults {
		f := f
		if n := testing.AllocsPerRun(100, func() {
			if _, err := s.Detects(f); err != nil {
				t.Fatal(err)
			}
		}); n != 0 {
			t.Fatalf("Detects(%v) allocates %.1f times per run", f, n)
		}
	}
}

// TestCampaignUnobservableFault pins the static-cone classification: a
// gate with no path to any PPO is undetectable and never simulated.
func TestCampaignUnobservableFault(t *testing.T) {
	// G5 is driven but drives nothing and is not an output.
	src := "INPUT(A)\nINPUT(B)\nOUTPUT(Y)\nY = AND(A, B)\nG5 = OR(A, B)\n"
	_, sv := circuit(t, src, "dangling")
	g, ok := sv.Circuit.GateByName("G5")
	if !ok {
		t.Fatal("G5 missing")
	}
	if sv.Observable[g.ID] {
		t.Fatal("dangling gate marked observable")
	}
	y, _ := sv.Circuit.GateByName("Y")
	if !sv.Observable[y.ID] {
		t.Fatal("output gate not observable")
	}
	rng := rand.New(rand.NewSource(3))
	set := randomSpecifiedSet(rng, 8, sv.ScanWidth())
	faults := []Fault{
		{Gate: g.ID, Pin: -1, StuckAt: true},
		{Gate: g.ID, Pin: 0, StuckAt: false},
		{Gate: y.ID, Pin: -1, StuckAt: false},
	}
	cov, err := NewSimulator(sv).Campaign(set, faults)
	if err != nil {
		t.Fatal(err)
	}
	if cov.FirstDetectedBy[0] != -1 || cov.FirstDetectedBy[1] != -1 {
		t.Fatalf("unobservable faults detected: %+v", cov)
	}
	if cov.FirstDetectedBy[2] < 0 {
		t.Fatalf("observable output fault undetected: %+v", cov)
	}
}

// TestCampaignTelemetryCounters wires a registry and asserts the new
// engine counters move: collapsing merged classes, the cone filter
// skipped the dangling gate, and the work queue drained.
func TestCampaignTelemetryCounters(t *testing.T) {
	reg := obs.NewRegistry()
	obs.Enable(reg)
	defer obs.Disable()

	src := "INPUT(A)\nINPUT(B)\nOUTPUT(Y)\nN = NOT(A)\nY = AND(N, B)\nG5 = OR(A, B)\n"
	ckt, sv := circuit(t, src, "telemetry")
	rng := rand.New(rand.NewSource(4))
	set := randomSpecifiedSet(rng, 16, sv.ScanWidth())
	if _, err := CampaignParallel(sv, set, Universe(ckt), 2); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["faultsim.faults_collapsed"] <= 0 {
		t.Fatalf("faults_collapsed = %d, want > 0", snap.Counters["faultsim.faults_collapsed"])
	}
	if snap.Counters["faultsim.cone_skipped"] <= 0 {
		t.Fatalf("cone_skipped = %d, want > 0", snap.Counters["faultsim.cone_skipped"])
	}
	if snap.Counters["faultsim.steal_waits"] <= 0 {
		t.Fatalf("steal_waits = %d, want > 0", snap.Counters["faultsim.steal_waits"])
	}
	if snap.Counters["faultsim.patterns_simulated"] != int64(set.Len()) {
		t.Fatalf("patterns_simulated = %d, want %d", snap.Counters["faultsim.patterns_simulated"], set.Len())
	}
}
