package faultsim

import (
	"context"
	"fmt"
	mathbits "math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/tcube"
)

// campaignWorkerHook, when non-nil, runs at the top of each campaign
// worker goroutine. It exists so tests can inject a worker panic and
// prove the recovery path contains it; production code never sets it.
var campaignWorkerHook func(worker int)

// CampaignParallel runs the same campaign as Simulator.Campaign but
// splits the fault list across workers (fault dropping is per-fault,
// so the partition does not change the result). workers ≤ 0 selects
// GOMAXPROCS.
func CampaignParallel(sv *netlist.ScanView, set *tcube.Set, faults []Fault, workers int) (Coverage, error) {
	return CampaignParallelCtx(context.Background(), sv, set, faults, workers)
}

// CampaignParallelCtx is CampaignParallel under a context: every worker
// observes cancellation at batch granularity, a panicking worker is
// recovered into an error instead of killing the process, and on any
// failure the partial coverage is discarded atomically — the caller
// gets the complete result or nothing.
func CampaignParallelCtx(ctx context.Context, sv *netlist.ScanView, set *tcube.Set, faults []Fault, workers int) (Coverage, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return campaignRun(ctx, sv, nil, set, faults, workers)
}

// CampaignPrepared grades precomputed good-machine batches (see
// PrepareBatches) against the fault list. Use it to amortize the good
// simulation when the same test set is graded against several fault
// lists — the batches are shared read-only across workers and calls.
func CampaignPrepared(sv *netlist.ScanView, batches []Batch, faults []Fault, workers int) (Coverage, error) {
	return CampaignPreparedCtx(context.Background(), sv, batches, faults, workers)
}

// CampaignPreparedCtx is CampaignPrepared under a context, with the
// same cancellation and panic-containment semantics as
// CampaignParallelCtx.
func CampaignPreparedCtx(ctx context.Context, sv *netlist.ScanView, batches []Batch, faults []Fault, workers int) (Coverage, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return campaignRun(ctx, sv, batches, nil, faults, workers)
}

// campaignRun is the shared campaign engine behind every entry point:
//
//  1. the test set is converted and good-simulated exactly once into
//     shared read-only batches (unless the caller prepared them);
//  2. CollapseFaults shrinks the injection work to one representative
//     per exact equivalence class, and representatives whose site
//     cannot reach any PPO are classified undetectable without a
//     single Detects call;
//  3. workers pull fixed-size runs of representatives off an atomic
//     cursor (a work-stealing strided queue) so fault dropping cannot
//     strand a statically chosen chunk on one worker;
//  4. the per-representative results are expanded back over the full
//     fault list, bit-identical to simulating every fault serially.
func campaignRun(ctx context.Context, sv *netlist.ScanView, batches []Batch, set *tcube.Set, faults []Fault, workers int) (Coverage, error) {
	if err := ctx.Err(); err != nil {
		return Coverage{}, err
	}
	reg := obs.Active()
	sp := reg.Span("faultsim.campaign").Set("faults", len(faults)).Set("workers", workers)
	fail := func(err error) (Coverage, error) {
		sp.Set("error", err.Error()).End()
		return Coverage{}, err
	}
	if batches == nil {
		var err error
		if batches, err = PrepareBatches(sv, set, workers); err != nil {
			return fail(err)
		}
		sp.Set("patterns", set.Len())
	}

	cls := CollapseFaults(sv.Circuit, faults)
	reg.Counter("faultsim.faults_collapsed").Add(int64(len(faults) - len(cls.Reps)))

	// Classify statically unobservable representatives up front; only
	// the rest enter the work queue. DFF input-pin faults observe the
	// captured value directly and bypass the cone filter.
	first := make([]int, len(cls.Reps))
	work := make([]int32, 0, len(cls.Reps))
	coneSkipped := 0
	for ri, f := range cls.Reps {
		first[ri] = -1
		g := &sv.Circuit.Gates[f.Gate]
		if !(g.Type == netlist.DFF && f.Pin == 0) && !sv.Observable[f.Gate] {
			coneSkipped++
			continue
		}
		work = append(work, int32(ri))
	}
	reg.Counter("faultsim.cone_skipped").Add(int64(coneSkipped))
	sp.Set("reps", len(cls.Reps)).Set("cone_skipped", coneSkipped)

	if workers > len(work) {
		workers = len(work)
	}
	if workers < 1 {
		workers = 1
	}

	// Run size: big enough to amortize the per-batch faulty-plane
	// reset across many injections, small enough that late-campaign
	// dropping still load-balances. The serial path takes the whole
	// queue in one claim, preserving strict batch-major order.
	run := len(work) / (workers * 8)
	if run < 16 {
		run = 16
	}
	if run > 256 {
		run = 256
	}
	if workers == 1 && len(work) > 0 {
		run = len(work)
	}

	var cursor atomic.Int64
	cancellable := ctx.Done() != nil
	serial := workers == 1

	body := func(worker int) error {
		if campaignWorkerHook != nil {
			campaignWorkerHook(worker)
		}
		sim := NewSimulator(sv)
		claims := 0
		for {
			lo := int(cursor.Add(int64(run))) - run
			if lo >= len(work) {
				if claims > 0 {
					reg.Counter("faultsim.steal_waits").Inc()
				}
				return nil
			}
			claims++
			hi := lo + run
			if hi > len(work) {
				hi = len(work)
			}
			remaining := hi - lo
			dropped := 0
			for bi := range batches {
				if remaining == 0 {
					break
				}
				if cancellable {
					if err := ctx.Err(); err != nil {
						return err
					}
				}
				b := &batches[bi]
				sim.UseBatch(b)
				for _, ri := range work[lo:hi] {
					if first[ri] >= 0 {
						continue // dropped
					}
					mask, err := sim.Detects(cls.Reps[ri])
					if err != nil {
						return err
					}
					if mask != 0 {
						first[ri] = b.Base + mathbits.TrailingZeros64(mask)
						remaining--
						dropped++
					}
				}
				if serial && reg != nil {
					reg.Emit("progress", "faultsim.batch", map[string]any{
						"patterns": b.Base + b.N, "reps": hi - lo, "dropped": dropped,
					})
				}
			}
			reg.Counter("faultsim.faults_dropped").Add(int64(dropped))
			if !serial && reg != nil {
				reg.Emit("progress", "faultsim.chunk", map[string]any{
					"worker": worker, "reps": hi - lo, "dropped": dropped,
				})
			}
		}
	}

	if serial {
		if err := body(0); err != nil {
			return fail(err)
		}
	} else {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer func() {
					if p := recover(); p != nil {
						errs[w] = fmt.Errorf("faultsim: campaign worker %d panicked: %v", w, p)
					}
				}()
				errs[w] = body(w)
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fail(err)
			}
		}
	}

	// Expand the representative results over the full fault list.
	cov := Coverage{Total: len(faults), FirstDetectedBy: make([]int, len(faults))}
	for i := range faults {
		fd := first[cls.Of[i]]
		cov.FirstDetectedBy[i] = fd
		if fd >= 0 {
			cov.Detected++
		}
	}
	sp.Set("detected", cov.Detected).End()
	return cov, nil
}
