package faultsim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/tcube"
)

// campaignWorkerHook, when non-nil, runs at the top of each campaign
// worker goroutine. It exists so tests can inject a worker panic and
// prove the recovery path contains it; production code never sets it.
var campaignWorkerHook func(worker int)

// CampaignParallel runs the same campaign as Simulator.Campaign but
// splits the fault list across workers, each with its own simulator
// (fault dropping is per-fault, so the partition does not change the
// result). workers ≤ 0 selects GOMAXPROCS.
func CampaignParallel(sv *netlist.ScanView, set *tcube.Set, faults []Fault, workers int) (Coverage, error) {
	return CampaignParallelCtx(context.Background(), sv, set, faults, workers)
}

// CampaignParallelCtx is CampaignParallel under a context: every worker
// observes cancellation at batch granularity, a panicking worker is
// recovered into an error instead of killing the process, and on any
// failure the partial coverage is discarded atomically — the caller
// gets the complete result or nothing.
func CampaignParallelCtx(ctx context.Context, sv *netlist.ScanView, set *tcube.Set, faults []Fault, workers int) (Coverage, error) {
	if err := ctx.Err(); err != nil {
		return Coverage{}, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		return NewSimulator(sv).CampaignCtx(ctx, set, faults)
	}
	reg := obs.Active()
	sp := reg.Span("faultsim.campaign_parallel").
		Set("workers", workers).Set("patterns", set.Len()).Set("faults", len(faults))

	cov := Coverage{Total: len(faults), FirstDetectedBy: make([]int, len(faults))}
	type chunk struct{ lo, hi int }
	chunks := make([]chunk, 0, workers)
	per := (len(faults) + workers - 1) / workers
	for lo := 0; lo < len(faults); lo += per {
		hi := lo + per
		if hi > len(faults) {
			hi = len(faults)
		}
		chunks = append(chunks, chunk{lo, hi})
	}

	var wg sync.WaitGroup
	errs := make([]error, len(chunks))
	results := make([]Coverage, len(chunks))
	for i, ch := range chunks {
		wg.Add(1)
		go func(i int, ch chunk) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("faultsim: campaign worker %d panicked: %v", i, p)
				}
			}()
			wsp := sp.Child("faultsim.worker").Set("worker", i).Set("faults", ch.hi-ch.lo)
			if campaignWorkerHook != nil {
				campaignWorkerHook(i)
			}
			sim := NewSimulator(sv)
			results[i], errs[i] = sim.CampaignCtx(ctx, set, faults[ch.lo:ch.hi])
			wsp.Set("detected", results[i].Detected).End()
			reg.Emit("progress", "faultsim.chunk", map[string]any{
				"chunk": i, "chunks": len(chunks),
				"faults": ch.hi - ch.lo, "detected": results[i].Detected,
			})
		}(i, ch)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			sp.Set("error", err.Error()).End()
			return Coverage{}, err
		}
		ch := chunks[i]
		for j, first := range results[i].FirstDetectedBy {
			cov.FirstDetectedBy[ch.lo+j] = first
			if first >= 0 {
				cov.Detected++
			}
		}
	}
	sp.Set("detected", cov.Detected).End()
	return cov, nil
}
