package faultsim

import (
	"runtime"
	"sync"

	"repro/internal/netlist"
	"repro/internal/tcube"
)

// CampaignParallel runs the same campaign as Simulator.Campaign but
// splits the fault list across workers, each with its own simulator
// (fault dropping is per-fault, so the partition does not change the
// result). workers ≤ 0 selects GOMAXPROCS.
func CampaignParallel(sv *netlist.ScanView, set *tcube.Set, faults []Fault, workers int) (Coverage, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers <= 1 {
		return NewSimulator(sv).Campaign(set, faults)
	}

	cov := Coverage{Total: len(faults), FirstDetectedBy: make([]int, len(faults))}
	type chunk struct{ lo, hi int }
	chunks := make([]chunk, 0, workers)
	per := (len(faults) + workers - 1) / workers
	for lo := 0; lo < len(faults); lo += per {
		hi := lo + per
		if hi > len(faults) {
			hi = len(faults)
		}
		chunks = append(chunks, chunk{lo, hi})
	}

	var wg sync.WaitGroup
	errs := make([]error, len(chunks))
	results := make([]Coverage, len(chunks))
	for i, ch := range chunks {
		wg.Add(1)
		go func(i int, ch chunk) {
			defer wg.Done()
			sim := NewSimulator(sv)
			results[i], errs[i] = sim.Campaign(set, faults[ch.lo:ch.hi])
		}(i, ch)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return Coverage{}, err
		}
		ch := chunks[i]
		for j, first := range results[i].FirstDetectedBy {
			cov.FirstDetectedBy[ch.lo+j] = first
			if first >= 0 {
				cov.Detected++
			}
		}
	}
	return cov, nil
}
