// Reduced pin-count testing (the paper's §III.B / Fig. 4): one chip,
// three scan architectures, and the pins-versus-time trade-off the 9C
// decoder buys. The workload is the s38417-profile synthetic test set.
package main

import (
	"fmt"
	"log"

	"repro/internal/ate"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/synth"
	"repro/internal/tcube"
)

func main() {
	const (
		k = 8  // block size
		p = 8  // f_scan / f_ate
		m = 64 // scan chains in the multi-chain variants
	)
	set, err := synth.MintestLike("s38417")
	if err != nil {
		log.Fatal(err)
	}
	// Pad the scan width so it divides into m chains of K-chain groups.
	width := set.Width()
	if rem := width % (m * k); rem != 0 {
		width += m*k - rem
	}
	padded := tcube.NewSet(set.Name, width)
	for i := 0; i < set.Len(); i++ {
		if err := padded.Append(set.Cube(i).Slice(0, width)); err != nil {
			log.Fatal(err)
		}
	}
	codec, err := core.New(k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d patterns x %d bits (padded), p=%d\n\n",
		set.Name, padded.Len(), width, p)
	baseline := float64(padded.Bits())
	fmt.Printf("no compression, 1 pin:            %12.0f ATE cycles\n", baseline)

	// (a) single chain, single pin.
	ra, err := codec.EncodeSet(padded)
	if err != nil {
		log.Fatal(err)
	}
	repA, err := ate.Session{P: p, FillSeed: 11}.RunSingleScan(ra)
	if err != nil {
		log.Fatal(err)
	}
	timeA := float64(repA.ATECycles) + float64(repA.ScanCycles)/p
	fmt.Printf("(a) 9C, single chain, 1 pin:      %12.0f ATE cycles (TAT %.1f%%)\n",
		timeA, repA.TATMeasured)

	// (b) m chains, still one pin: vertical encoding + stager.
	vert, err := tcube.Verticalize(padded, m)
	if err != nil {
		log.Fatal(err)
	}
	rb, err := codec.EncodeSet(vert)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := ate.FillStream(rb.Stream, 12)
	if err != nil {
		log.Fatal(err)
	}
	ms, err := decoder.NewMultiScan(k, m, codec.Assignment())
	if err != nil {
		log.Fatal(err)
	}
	trB, err := ms.Run(stream, rb.Blocks*rb.K)
	if err != nil {
		log.Fatal(err)
	}
	timeB := trB.TestTimeATE(p)
	fmt.Printf("(b) 9C, %d chains, 1 pin:         %12.0f ATE cycles (%d parallel loads)\n",
		m, timeB, trB.Loads)

	// (c) m chains, m/K pins, m/K parallel decoders.
	bank, err := decoder.NewParallelBank(k, m, codec.Assignment())
	if err != nil {
		log.Fatal(err)
	}
	chainsPerGroup := k
	groupWidth := width / bank.Decoders()
	fmt.Printf("(c) 9C, %d chains, %d pins:       ", m, bank.Decoders())
	groups, outBits, err := groupStreams(padded, m, chainsPerGroup, codec)
	if err != nil {
		log.Fatal(err)
	}
	bt, err := bank.Run(groups, outBits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%12.0f ATE cycles (%.1fx faster than (b))\n",
		bt.TestTimeATE(p), timeB/bt.TestTimeATE(p))
	_ = groupWidth
	fmt.Printf("\npins stay at %d of %d chains; decoder hardware per pin: ", bank.Decoders(), m)
	h, err := decoder.EstimateCost(k, k, codec.Assignment())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", h)
}

// groupStreams encodes each decoder group's vertical stream.
func groupStreams(padded *tcube.Set, m, k int, codec *core.Codec) ([]*bitvec.Bits, int, error) {
	groups := m / k
	per := padded.Width() / m
	sets := make([]*tcube.Set, groups)
	for g := range sets {
		sets[g] = tcube.NewSet(fmt.Sprintf("g%d", g), k*per)
	}
	for i := 0; i < padded.Len(); i++ {
		chains, err := tcube.ChainSlices(padded.Cube(i), m)
		if err != nil {
			return nil, 0, err
		}
		for g := 0; g < groups; g++ {
			cube := concatChains(chains[g*k:(g+1)*k], per)
			vert, err := tcube.VerticalReshape(cube, k)
			if err != nil {
				return nil, 0, err
			}
			if err := sets[g].Append(vert); err != nil {
				return nil, 0, err
			}
		}
	}
	var streams []*bitvec.Bits
	outBits := 0
	for _, s := range sets {
		r, err := codec.EncodeSet(s)
		if err != nil {
			return nil, 0, err
		}
		b, err := ate.FillStream(r.Stream, 13)
		if err != nil {
			return nil, 0, err
		}
		streams = append(streams, b)
		outBits = r.Blocks * r.K
	}
	return streams, outBits, nil
}

// concatChains packs k per-chain cubes back into one flat cube of
// k*per bits, chain after chain.
func concatChains(chains []*bitvec.Cube, per int) *bitvec.Cube {
	out := bitvec.NewCube(len(chains) * per)
	for c, ch := range chains {
		for t := 0; t < per; t++ {
			out.Set(c*per+t, ch.Get(t))
		}
	}
	return out
}
