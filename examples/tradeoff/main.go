// The user-facing trade-off of the paper (§IV): pick the block size K
// that balances compression ratio, leftover don't-cares (for
// non-modeled-fault coverage), decoder hardware cost, and test time.
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/ate"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/synth"
)

func main() {
	name := "s15850"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	minLX := 10.0 // "user asks for a specific amount of don't-cares"
	if len(os.Args) > 2 {
		v, err := strconv.ParseFloat(os.Args[2], 64)
		if err != nil {
			log.Fatal(err)
		}
		minLX = v
	}
	set, err := synth.MintestLike(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s (%.1f%% X); requirement: keep >= %.1f%% leftover don't-cares\n\n",
		name, set.XPercent(), minLX)
	fmt.Printf("%4s %8s %8s %10s %12s %12s\n", "K", "CR%", "LX%", "TAT%(p=8)", "decoder FFs", "decoder gates")

	bestK := 0
	bestCR := -1.0
	for _, k := range []int{4, 8, 12, 16, 20, 24, 28, 32, 48, 64} {
		cdc, err := core.New(k)
		if err != nil {
			log.Fatal(err)
		}
		r, err := cdc.EncodeSet(set)
		if err != nil {
			log.Fatal(err)
		}
		cost, err := decoder.EstimateCost(k, 0, cdc.Assignment())
		if err != nil {
			log.Fatal(err)
		}
		tat, err := ate.TAT(r, 8)
		if err != nil {
			log.Fatal(err)
		}
		mark := " "
		if r.LXPercent() >= minLX && r.CR() > bestCR {
			bestCR, bestK = r.CR(), k
			mark = "*"
		}
		fmt.Printf("%4d %8.2f %8.2f %10.2f %12d %12d %s\n",
			k, r.CR(), r.LXPercent(), tat, cost.TotalFlops(), cost.TotalGates(), mark)
	}
	if bestK == 0 {
		fmt.Printf("\nno K meets the LX >= %.1f%% requirement\n", minLX)
		return
	}
	fmt.Printf("\nchoose K=%d: best CR (%.2f%%) among block sizes keeping >= %.1f%% leftover X\n",
		bestK, bestCR, minLX)
}
