// Full DFT flow, end to end: a synthetic full-scan circuit goes
// through PODEM test generation, 9C compression, cycle-accurate
// on-chip decompression, scan application and fault grading — the
// complete loop the paper's technique slots into. The closing check
// compares the coverage of the shipped (decompressed + filled)
// patterns against the generated ones.
package main

import (
	"fmt"
	"log"

	"repro/internal/ate"
	"repro/internal/atpg"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/synth"
)

func main() {
	// 1. A scaled s9234-profile circuit (structure from the published
	// benchmark, logic synthesized randomly — see DESIGN.md §4).
	cs, err := synth.BenchmarkByName("s9234")
	if err != nil {
		log.Fatal(err)
	}
	prof := synth.CircuitProfileFor(cs, 20, 42)
	ckt, err := prof.Generate()
	if err != nil {
		log.Fatal(err)
	}
	sv, err := ckt.FullScan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit: %s/20 — %d gates, %d PIs, %d FFs, scan width %d\n",
		cs.Name, ckt.NumLogicGates(), len(ckt.Inputs), len(ckt.DFFs), sv.ScanWidth())

	// 2. ATPG: PODEM with fault dropping and reverse-order compaction.
	faults := faultsim.Collapse(ckt)
	cubes, stats, err := atpg.Generate(sv, faults, atpg.Options{FillSeed: 5, Compact: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG: %d collapsed faults -> %d cubes, campaign coverage %.2f%%, %.1f%% X\n",
		stats.Faults, cubes.Len(), stats.CoveragePercent, cubes.XPercent())

	// 3. 9C compression, fanned across the machine's cores (the stream
	// is bit-identical to a serial encode).
	codec, err := core.New(8)
	if err != nil {
		log.Fatal(err)
	}
	r, err := codec.EncodeSetParallel(cubes, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("9C: %d -> %d bits (CR %.2f%%), %.2f%% leftover don't-cares\n",
		r.OrigBits, r.CompressedBits(), r.CR(), r.LXPercent())

	// 4. Ship through the cycle-accurate decoder.
	rep, err := ate.Session{P: 8, FillSeed: 6}.RunSingleScan(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoder: %d ATE cycles + %d scan cycles, TAT %.2f%%\n",
		rep.ATECycles, rep.ScanCycles, rep.TATMeasured)

	// 5. Decode, fill the leftover X randomly, grade coverage.
	decoded, err := codec.DecodeSet(r.Stream, cubes.Width(), cubes.Len())
	if err != nil {
		log.Fatal(err)
	}
	if !cubes.Covers(decoded) {
		log.Fatal("decompression disturbed a specified bit")
	}
	sim := faultsim.NewSimulator(sv)
	covBefore, err := sim.Campaign(atpg.FillSet(cubes, 5), faults)
	if err != nil {
		log.Fatal(err)
	}
	covAfter, err := sim.Campaign(atpg.FillSet(decoded, 5), faults)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collapsed-fault coverage: %.2f%% as generated, %.2f%% after decompression + fill\n",
		covBefore.Percent(), covAfter.Percent())

	// The paper's motivation: random fill of leftover X also catches
	// faults outside the target list. Grade the full uncollapsed
	// universe as the non-modeled surrogate.
	universe := faultsim.Universe(ckt)
	covU, err := sim.Campaign(atpg.FillSet(decoded, 5), universe)
	if err != nil {
		log.Fatal(err)
	}
	covZ, err := sim.Campaign(decoded.FillConst(0), universe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full fault universe: %.2f%% with random fill vs %.2f%% with zero fill\n",
		covU.Percent(), covZ.Percent())
}
