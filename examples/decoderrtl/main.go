// Flexible on-chip decompression, literally: this example generates
// the 9C decoder as a gate-level netlist, simulates it gate by gate
// with the sequential logic simulator, and shows it reproduce the
// software codec's output bit-for-bit and cycle-for-cycle — while
// remaining byte-identical no matter which test set it serves.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/ate"
	"repro/internal/bitvec"
	"repro/internal/core"
	"repro/internal/decoder"
	"repro/internal/logicsim"
	"repro/internal/netlist"
	"repro/internal/tcube"
)

const cubes = `
0000000011111111
01X011011XXXXX10
XXXXXXXXXXXXXXXX
1111000000001111
`

func main() {
	const k = 8
	codec, err := core.New(k)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Generate the decoder hardware.
	ckt, err := decoder.GenerateRTL(k, codec.Assignment())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("decoder netlist: %d flip-flops, %d gates, 1 data pin\n",
		len(ckt.DFFs), ckt.NumLogicGates())
	var sb strings.Builder
	if err := netlist.WriteBench(&sb, ckt); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first lines of the .bench view:\n")
	for i, line := range strings.SplitN(sb.String(), "\n", 6) {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}

	// 2. Compress a test set and fill its leftover don't-cares.
	set, err := tcube.Read("demo", strings.NewReader(cubes))
	if err != nil {
		log.Fatal(err)
	}
	r, err := codec.EncodeSet(set)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := ate.FillStream(r.Stream, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nT_D %d bits -> T_E %d bits (CR %.1f%%)\n", r.OrigBits, stream.Len(), r.CR())

	// 3. Drive the gate-level machine cycle by cycle.
	sim, err := logicsim.NewSeq(ckt)
	if err != nil {
		log.Fatal(err)
	}
	outBits := r.Blocks * r.K
	out := bitvec.NewBits(outBits)
	collected, consumed, cycles := 0, 0, 0
	for collected < outBits {
		sim.Eval()
		if rd, _ := sim.Value("ate_rd"); rd {
			if err := sim.SetInput("din", stream.Get(consumed)); err != nil {
				log.Fatal(err)
			}
			consumed++
			sim.Eval()
		}
		if se, _ := sim.Value("scan_en"); se {
			v, _ := sim.Value("dout")
			out.Set(collected, v)
			collected++
		}
		sim.Step()
		cycles++
	}
	fmt.Printf("gate-level run: %d clock cycles, consumed %d/%d stream bits\n",
		cycles, consumed, stream.Len())

	// 4. Compare with the behavioural model.
	d, err := decoder.NewSingleScan(k, codec.Assignment())
	if err != nil {
		log.Fatal(err)
	}
	tr, err := d.Run(stream, outBits)
	if err != nil {
		log.Fatal(err)
	}
	if !out.Equal(tr.Out) {
		log.Fatal("gate-level output differs from the behavioural model")
	}
	fmt.Printf("gate-level output == behavioural model (%d bits) ✓\n", outBits)
	fmt.Println("\nthe same netlist serves any test set: only K selects the hardware")
}
