// Quickstart: compress a small precomputed test set with the 9C codec,
// inspect the stream, and decode it back.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/tcube"
)

const cubes = `
# 4 patterns x 16 bits, X = don't-care
0000000011111111
0000XXXX01X011X1
XXXXXXXXXXXXXXXX
1111111100000000
`

func main() {
	set, err := tcube.Read("quickstart", strings.NewReader(cubes))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("T_D: %d patterns x %d bits = %d bits (%.1f%% X)\n\n",
		set.Len(), set.Width(), set.Bits(), set.XPercent())

	codec, err := core.New(8) // K = 8, the paper's sweet spot
	if err != nil {
		log.Fatal(err)
	}
	r, err := codec.EncodeSet(set)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("codewords:  %s\n", r.Assign)
	fmt.Printf("T_E stream: %s\n", r.Stream)
	fmt.Printf("|T_E| = %d bits -> CR = %.1f%%, leftover don't-cares = %.1f%%\n\n",
		r.CompressedBits(), r.CR(), r.LXPercent())

	decoded, err := codec.DecodeSet(r.Stream, set.Width(), set.Len())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("decoded scan loads (leftover X may be filled at test time):")
	for i := 0; i < decoded.Len(); i++ {
		fmt.Printf("  %s\n", decoded.Cube(i))
	}
	if !set.Covers(decoded) {
		log.Fatal("decode contradicted a specified bit")
	}
	fmt.Println("\nevery specified bit of T_D survived the round trip ✓")
}
