// Codec comparison (the paper's Table IV, interactively): 9C against
// every baseline implemented in this repository, on one workload.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/codecs"
	"repro/internal/core"
	"repro/internal/synth"
	"repro/internal/tcube"
)

func main() {
	name := "s13207"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	set, err := synth.MintestLike(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d bits, %.1f%% don't-care\n\n", name, set.Bits(), set.XPercent())
	fmt.Printf("%-18s %10s %8s   %s\n", "codec", "|T_E|", "CR%", "notes")

	// 9C at its best K, default assignment — decoder independent of
	// the test set, leftover don't-cares preserved.
	bestK, bestR := best9C(set)
	fmt.Printf("%-18s %10d %8.2f   K=%d, %.1f%% X kept for random fill\n",
		"9C", bestR.CompressedBits(), bestR.CR(), bestK, bestR.LXPercent())

	rows := []struct {
		name string
		run  func(*tcube.Set) (codecs.Result, error)
		note string
	}{
		{"FDR", func(s *tcube.Set) (codecs.Result, error) { return codecs.CompressSet(codecs.FDR{}, s) }, "0-fill, set-independent decoder"},
		{"EFDR", func(s *tcube.Set) (codecs.Result, error) { return codecs.CompressSet(codecs.EFDR{}, s) }, "MT-fill, both-polarity runs"},
		{"ARL-FDR", func(s *tcube.Set) (codecs.Result, error) { return codecs.CompressSet(codecs.ARL{}, s) }, "alternating runs"},
		{"Golomb", codecs.BestGolomb, "group size tuned per set"},
		{"VIHC", codecs.BestVIHC, "Huffman table from this test set"},
		{"MTC", codecs.BestMTC, "MT-fill + run codes"},
		{"SelHuffman", codecs.BestSelectiveHuffman, "partial Huffman, set-dependent"},
		{"Huffman", func(s *tcube.Set) (codecs.Result, error) { return codecs.CompressSet(&codecs.FullHuffman{B: 8}, s) }, "full table, set-dependent"},
		{"Dictionary", codecs.BestDictionary, "fixed-length indices, on-chip RAM"},
		{"LZW", codecs.BestLZW, "adaptive dictionary, on-chip RAM"},
	}
	for _, row := range rows {
		r, err := row.run(set)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %10d %8.2f   %s\n", r.Codec, r.CompressedBits, r.CR(), row.note)
	}
	fmt.Println("\nevery baseline fills X before shipping; only 9C carries don't-cares through the channel")
}

func best9C(set *tcube.Set) (int, *core.Result) {
	var bestR *core.Result
	bestK := 0
	for _, k := range []int{4, 8, 12, 16, 20, 24, 28, 32} {
		cdc, err := core.New(k)
		if err != nil {
			log.Fatal(err)
		}
		r, err := cdc.EncodeSet(set)
		if err != nil {
			log.Fatal(err)
		}
		if bestR == nil || r.CR() > bestR.CR() {
			bestR, bestK = r, k
		}
	}
	return bestK, bestR
}
